#include "core/solver.h"

#include <cstdio>
#include <string>
#include <utility>

#include "cache/canonical.h"
#include "cache/inflight.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace encodesat {

namespace {

SolveResult::Status from_exact(ExactEncodeResult::Status s) {
  switch (s) {
    case ExactEncodeResult::Status::kEncoded:
      return SolveResult::Status::kEncoded;
    case ExactEncodeResult::Status::kInfeasible:
      return SolveResult::Status::kInfeasible;
    case ExactEncodeResult::Status::kPrimeLimit:
      return SolveResult::Status::kTruncated;
  }
  return SolveResult::Status::kInfeasible;
}

SolveResult::Status from_extension(ExtensionEncodeResult::Status s) {
  switch (s) {
    case ExtensionEncodeResult::Status::kEncoded:
      return SolveResult::Status::kEncoded;
    case ExtensionEncodeResult::Status::kInfeasible:
      return SolveResult::Status::kInfeasible;
    case ExtensionEncodeResult::Status::kPrimeLimit:
    case ExtensionEncodeResult::Status::kCoverLimit:
      return SolveResult::Status::kTruncated;
  }
  return SolveResult::Status::kInfeasible;
}

/// The pipeline dispatch: fills every result field except the root stats
/// bookkeeping (work/elapsed/truncated), which the caller owns.
void run_pipeline(const ConstraintSet& cs, const SolveOptions& opts,
                  const ExecContext& ctx, SolveResult& out) {
  const bool extended =
      opts.pipeline == SolveOptions::Pipeline::kExtensions ||
      (opts.pipeline == SolveOptions::Pipeline::kAuto &&
       (!cs.distance2s().empty() || !cs.nonfaces().empty()));
  if (!extended) {
    ExactEncodeResult r = exact_encode(cs, opts.exact, ctx);
    out.status = from_exact(r.status);
    out.encoding = std::move(r.encoding);
    out.minimal = r.status == ExactEncodeResult::Status::kEncoded && r.minimal;
    out.truncation = r.truncation;
    out.uncovered = std::move(r.uncovered);
    out.num_initial = r.num_initial;
    out.num_raised = r.num_raised;
    out.num_primes = r.num_primes;
    out.num_valid_primes = r.num_valid_primes;
    if (const StageStats* cover = out.stats.find("unate_cover"))
      out.nodes_explored = cover->items;
  } else {
    ExtensionEncodeResult r = encode_with_extensions(cs, opts.extensions, ctx);
    out.status = from_extension(r.status);
    out.encoding = std::move(r.encoding);
    out.minimal =
        r.status == ExtensionEncodeResult::Status::kEncoded && r.minimal;
    out.truncation = r.truncation;
    out.num_candidates = r.num_candidates;
    out.num_aux_columns = r.num_aux_columns;
    out.nodes_explored = r.nodes_explored;
  }
}

void stats_key(const StageStats& s, std::string& out) {
  out += s.name;
  out += ':';
  out += std::to_string(s.work);
  out += ':';
  out += std::to_string(s.items);
  out += '{';
  for (const StageStats& c : s.children) stats_key(c, out);
  out += '}';
}

CachedSolve to_cached(const SolveResult& r) {
  CachedSolve v;
  v.status = static_cast<int>(r.status);
  v.bits = r.encoding.bits;
  v.codes = r.encoding.codes;
  v.minimal = r.minimal;
  v.truncation = static_cast<int>(r.truncation);
  v.uncovered = r.uncovered;
  v.num_initial = r.num_initial;
  v.num_raised = r.num_raised;
  v.num_primes = r.num_primes;
  v.num_valid_primes = r.num_valid_primes;
  v.num_candidates = r.num_candidates;
  v.num_aux_columns = r.num_aux_columns;
  v.nodes_explored = r.nodes_explored;
  std::string key;
  stats_key(r.stats, key);
  v.stats_fingerprint = fnv1a64(key);
  return v;
}

/// Rebuilds a SolveResult from a cache entry, mapping canonical-space codes
/// back to the original symbol order. `uncovered` stays canonical (see
/// SolveResult docs).
void from_cached(const CachedSolve& v, const SymbolPermutation& perm,
                 SolveResult& out) {
  out.status = static_cast<SolveResult::Status>(v.status);
  out.encoding.bits = v.bits;
  if (v.codes.size() == perm.to_canonical.size()) {
    out.encoding.codes.resize(v.codes.size());
    for (std::size_t i = 0; i < v.codes.size(); ++i)
      out.encoding.codes[i] = v.codes[perm.to_canonical[i]];
  } else {
    out.encoding.codes = v.codes;
  }
  out.minimal = v.minimal;
  out.truncation = static_cast<Truncation>(v.truncation);
  out.truncated = out.truncation != Truncation::kNone;
  out.uncovered = v.uncovered;
  out.num_initial = v.num_initial;
  out.num_raised = v.num_raised;
  out.num_primes = v.num_primes;
  out.num_valid_primes = v.num_valid_primes;
  out.num_candidates = v.num_candidates;
  out.num_aux_columns = v.num_aux_columns;
  out.nodes_explored = v.nodes_explored;
  out.from_cache = true;
}

// Hit/miss/insert counts depend on cache history (what earlier solves
// stored), not on this solve's inputs, so they live outside the
// thread-count-invariant fingerprint (obs/counters.h contract).
void cache_metric(const ExecContext& ctx, const char* name, std::uint64_t v) {
  if (ctx.metrics) ctx.metrics->counter(name, /*in_fingerprint=*/false)->add(v);
}

// The facade body, with the budget already configured by the caller (the
// single-solve path sets a relative deadline, the batch path a shared
// absolute one). With `cache` non-null the *canonical* instance is solved
// and codes are mapped back, so warm hits replay cold misses bit for bit.
SolveResult run_solve(const ConstraintSet& cs, const SolveOptions& opts,
                      Budget& budget, int threads, SolveCache* cache) {
  SolveResult out;
  out.stats = StageStats("solve");
  const Budget::Clock::time_point start = Budget::Clock::now();
  const ExecContext ctx{&budget, &out.stats, threads, opts.exec.tracer,
                        opts.exec.metrics};
  // Root span matching the "solve" stats root; stage scopes below add the
  // child spans.
  TRACE_SCOPE(ctx, "solve");

  // True once `out` replays a finished solve (cache hit or coalesced
  // attach) — those skip the pipeline and the truncation fixup below.
  bool served = false;
  InFlightTable* sf = opts.cache.single_flight;
  // Either facility needs the canonical key: single-flight coalescing
  // works even with no cache attached (the in-flight table alone closes
  // the concurrent-duplicate window; join() supports cache == nullptr).
  if (cache != nullptr || sf != nullptr) {
    Canonicalization cz;
    {
      // StageScope emits the trace span and stats child in one.
      StageScope scope(ctx, "canonicalize");
      cz = canonicalize(cs, opts.cache.max_canon_leaves);
      scope.add_items(1);
    }
    char fp[20];
    std::snprintf(fp, sizeof fp, "#%016llx",
                  static_cast<unsigned long long>(
                      solve_options_fingerprint(opts)));
    const std::string key = cz.canon.key + fp;

    CachedSolve entry;
    bool have_entry = false;
    bool coalesced = false;
    bool wait_expired = false;
    std::shared_ptr<InFlightTable::Slot> slot;
    auto join = InFlightTable::Join::kLeader;
    {
      StageScope scope(ctx, "cache_lookup");
      if (sf != nullptr) {
        join = sf->join(cache, key, &entry, &slot);
        have_entry = join == InFlightTable::Join::kHit;
      } else {
        have_entry = cache->lookup(key, &entry);
        join = have_entry ? InFlightTable::Join::kHit
                          : InFlightTable::Join::kLeader;
      }
    }
    if (join == InFlightTable::Join::kFollower) {
      // Another thread is solving this exact canonical instance under the
      // same options fingerprint: attach instead of duplicating the work.
      // An abandoned leader (exception, or a leader whose own budget
      // truncated the result) drops us to the local-solve path; a deadline
      // expiring mid-wait is an ordinary deadline truncation.
      StageScope scope(ctx, "coalesce_wait");
      if (slot->wait(budget.has_deadline(), budget.deadline(), &entry)) {
        have_entry = true;
        coalesced = true;
      } else if (!slot->abandoned()) {
        budget.trip(Truncation::kDeadline);
        wait_expired = true;
      }
    }
    // Accounting: every solve lands in exactly one bucket — cache.hits +
    // cache.misses + cache.coalesced + cache.wait_expired sums to the
    // solve count under any interleaving. A follower whose leader
    // abandoned runs the pipeline itself, so it counts as a miss; a
    // follower whose own deadline expired mid-wait ran nothing and
    // received nothing, so it gets its own bucket.
    const bool fallback = join == InFlightTable::Join::kFollower &&
                          !have_entry && !wait_expired;
    cache_metric(ctx, "cache.hits",
                 have_entry && !coalesced ? 1 : 0);
    cache_metric(ctx, "cache.misses",
                 join == InFlightTable::Join::kLeader || fallback ? 1 : 0);
    cache_metric(ctx, "cache.coalesced", coalesced ? 1 : 0);
    cache_metric(ctx, "cache.wait_expired", wait_expired ? 1 : 0);
    if (have_entry) {
      from_cached(entry, cz.perm, out);
      out.coalesced = coalesced;
      out.stats.add_child(coalesced ? "coalesced" : "cache_hit");
      served = true;
    } else if (wait_expired) {
      out.status = SolveResult::Status::kTruncated;
    } else {
      const bool leads = sf != nullptr && join == InFlightTable::Join::kLeader;
      if (leads) {
        try {
          run_pipeline(cz.canon.set, opts, ctx, out);
        } catch (...) {
          sf->abandon(key, slot);
          throw;
        }
      } else {
        run_pipeline(cz.canon.set, opts, ctx, out);
      }
      // Store before permuting: entries live in canonical space. Truncated
      // results are transient (a bigger budget would do better) and are
      // neither cached nor published: a follower may hold a larger budget
      // than the leader it attached to (deadlines are excluded from the
      // coalescing key), and a coalesced response must be bit-identical to
      // a fresh solo solve of that request — so a truncated leader
      // abandons and its followers re-solve under their own budgets.
      const bool cacheable = out.truncation == Truncation::kNone &&
                             out.status != SolveResult::Status::kTruncated;
      if (leads) {
        if (cacheable) {
          sf->publish(cache, key, slot, to_cached(out));
          cache_metric(ctx, "cache.inserts", 1);
        } else {
          sf->abandon(key, slot);
        }
      } else if (cacheable && cache != nullptr) {
        cache->insert(key, to_cached(out));
        cache_metric(ctx, "cache.inserts", 1);
      }
      if (out.encoding.codes.size() == cz.perm.to_canonical.size()) {
        std::vector<std::uint64_t> codes(out.encoding.codes.size());
        for (std::size_t i = 0; i < codes.size(); ++i)
          codes[i] = out.encoding.codes[cz.perm.to_canonical[i]];
        out.encoding.codes = std::move(codes);
      }
    }
  } else {
    run_pipeline(cs, opts, ctx, out);
  }

  if (!served) {
    if (out.status == SolveResult::Status::kTruncated &&
        out.truncation == Truncation::kNone)
      out.truncation = budget.reason();
    out.truncated = out.truncation != Truncation::kNone;
  }
  metric_add(ctx, "solve.runs", 1);
  metric_add(ctx, "solve.work_units", budget.work_used());
  metric_add(ctx, "budget.truncations", out.truncated ? 1 : 0);
  out.stats.work = budget.work_used();
  out.stats.truncation = out.truncation;
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(Budget::Clock::now() - start).count();
  // Distribution observations. Work units are deterministic (fingerprint
  // histograms, checked threads-1-vs-N by the fuzzer's `histograms` rule);
  // per-stage durations are wall clock and stay outside the fingerprint.
  metric_observe(ctx, "solve.work", budget.work_used());
  for (const StageStats& stage : out.stats.children) {
    metric_observe(ctx, "solve.stage_work", stage.work);
    metric_observe(ctx, "solve.stage_us",
                   static_cast<std::uint64_t>(stage.elapsed_seconds * 1e6),
                   /*in_fingerprint=*/false);
  }
  return out;
}

void configure_limits(Budget& budget, const SolveOptions& opts) {
  if (opts.exec.max_work > 0) budget.set_work_limit(opts.exec.max_work);
  if (opts.exec.cancel) budget.set_cancel_token(opts.exec.cancel);
}

}  // namespace

std::uint64_t solve_options_fingerprint(const SolveOptions& opts) {
  std::string s = "p" + std::to_string(static_cast<int>(opts.pipeline));
  s += ";w" + std::to_string(opts.exec.max_work);
  s += ";et" + std::to_string(opts.exact.prime_options.max_terms);
  s += ";ew" + std::to_string(opts.exact.prime_options.max_work);
  s += ";en" + std::to_string(opts.exact.cover_options.max_nodes);
  s += ";xt" + std::to_string(opts.extensions.prime_options.max_terms);
  s += ";xw" + std::to_string(opts.extensions.prime_options.max_work);
  s += ";xn" + std::to_string(opts.extensions.cover_options.max_nodes);
  return fnv1a64(s);
}

StatusCode status_from_result(const SolveResult& r) {
  switch (r.status) {
    case SolveResult::Status::kEncoded:
      return StatusCode::kOk;
    case SolveResult::Status::kInfeasible:
      return StatusCode::kInfeasible;
    case SolveResult::Status::kTruncated:
      return r.truncation == Truncation::kCancelled ? StatusCode::kCanceled
                                                    : StatusCode::kTimeout;
  }
  return StatusCode::kInternal;
}

SolveResponse solve(const SolveRequest& req) {
  SolveResponse resp;
  resp.id = req.id;
  try {
    SolveOptions opts = req.options;
    if (req.deadline_seconds > 0)
      opts.exec.timeout_seconds = req.deadline_seconds;
    const Solver solver(req.constraints);
    resp.result = solver.encode(opts);
    resp.status = status_from_result(resp.result);
  } catch (const std::exception& e) {
    resp.status = StatusCode::kInternal;
    resp.detail = e.what();
  }
  return resp;
}

FeasibilityResult Solver::feasibility() const {
  return check_feasible(cs_, ExecContext{});
}

SolveCache* Solver::cache_for(const SolveOptions& opts) const {
  if (opts.cache.store != nullptr) return opts.cache.store;
  if (!opts.cache.enabled) return nullptr;
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (!owned_cache_)
    owned_cache_ = std::make_unique<SolveCache>(
        CacheConfig{opts.cache.shards, opts.cache.max_bytes});
  return owned_cache_.get();
}

SolveResult Solver::encode(const SolveOptions& opts) const {
  Budget budget;
  if (opts.exec.timeout_seconds > 0)
    budget.set_deadline_after(opts.exec.timeout_seconds);
  configure_limits(budget, opts);
  return run_solve(cs_, opts, budget, resolve_threads(opts.exec.threads),
                   cache_for(opts));
}

BoundedEncodeResult Solver::encode_bounded(int code_length,
                                           const SolveOptions& opts,
                                           StageStats* stats) const {
  Budget budget;
  if (opts.exec.timeout_seconds > 0)
    budget.set_deadline_after(opts.exec.timeout_seconds);
  configure_limits(budget, opts);
  if (stats) *stats = StageStats("solve");
  const Budget::Clock::time_point start = Budget::Clock::now();
  const ExecContext ctx{&budget, stats, resolve_threads(opts.exec.threads),
                        opts.exec.tracer, opts.exec.metrics};
  BoundedEncodeResult r = bounded_encode(cs_, code_length, opts.bounded, ctx);
  if (stats) {
    stats->work = budget.work_used();
    stats->truncation = r.truncation;
    stats->elapsed_seconds =
        std::chrono::duration<double>(Budget::Clock::now() - start).count();
  }
  return r;
}

std::vector<SolveResult> encode_batch(const std::vector<ConstraintSet>& sets,
                                      const SolveOptions& opts) {
  std::vector<SolveResult> out(sets.size());
  // One cache shared by the whole batch: canonical duplicates across items
  // hit even when no external store is supplied.
  SolveCache* cache = opts.cache.store;
  std::unique_ptr<SolveCache> batch_cache;
  if (cache == nullptr && opts.cache.enabled) {
    batch_cache = std::make_unique<SolveCache>(
        CacheConfig{opts.cache.shards, opts.cache.max_bytes});
    cache = batch_cache.get();
  }
  // One absolute deadline shared by every item; work budgets stay per-item
  // so work truncation does not depend on scheduling order.
  Budget::Clock::time_point deadline{};
  const bool has_deadline = opts.exec.timeout_seconds > 0;
  if (has_deadline)
    deadline = Budget::Clock::now() +
               std::chrono::duration_cast<Budget::Clock::duration>(
                   std::chrono::duration<double>(opts.exec.timeout_seconds));
  parallel_for(sets.size(), resolve_threads(opts.exec.threads),
               [&](std::size_t i) {
                 Budget budget;
                 if (has_deadline) budget.set_deadline(deadline);
                 configure_limits(budget, opts);
                 out[i] = run_solve(sets[i], opts, budget, /*threads=*/1,
                                    cache);
               });
  return out;
}

std::vector<BoundedEncodeResult> bounded_encode_lengths(
    const ConstraintSet& cs, const std::vector<int>& lengths,
    const BoundedEncodeOptions& opts, int threads,
    const ExecContext& ctx) {
  std::vector<BoundedEncodeResult> out(lengths.size());
  TRACE_SCOPE(ctx, "bounded_lengths");
  parallel_for(lengths.size(), resolve_threads(threads), [&](std::size_t i) {
    TRACE_SCOPE(ctx, "bounded_length");
    out[i] = bounded_encode(cs, lengths[i], opts);
    metric_add(ctx, "bounded.lengths_tried", 1);
  });
  return out;
}

}  // namespace encodesat
