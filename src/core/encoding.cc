#include "core/encoding.h"

namespace encodesat {

std::string Encoding::code_string(std::uint32_t symbol) const {
  std::string s;
  for (int b = bits - 1; b >= 0; --b)
    s += ((codes[symbol] >> b) & 1u) ? '1' : '0';
  return s;
}

std::string Encoding::to_string(const SymbolTable& symbols) const {
  std::string s;
  for (std::uint32_t i = 0; i < num_symbols(); ++i) {
    if (i) s += ", ";
    s += symbols.name(i);
    s += " = ";
    s += code_string(i);
  }
  return s;
}

Encoding derive_codes(std::uint32_t num_symbols,
                      const std::vector<Dichotomy>& columns) {
  Encoding enc;
  enc.bits = static_cast<int>(columns.size());
  enc.codes.assign(num_symbols, 0);
  for (std::size_t j = 0; j < columns.size(); ++j) {
    const Dichotomy& d = columns[j];
    for (std::uint32_t s = 0; s < num_symbols; ++s)
      if (!d.in_left(s)) enc.codes[s] |= std::uint64_t{1} << j;
  }
  return enc;
}

}  // namespace encodesat
