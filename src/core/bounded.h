// Bounded-length heuristic encoding — problem P-3 (Section 7.1).
//
// The exact approach would enumerate all 2^(n-1) encoding-dichotomies and
// solve a weighted covering; instead the heuristic recursively
//   1. SPLITS the symbol set in two (Kernighan-Lin style local search
//      minimizing the constraints cut by the partition dichotomy),
//   2. solves each side with one fewer code bit,
//   3. MERGES the children's restricted dichotomies by cross-product
//      (both orientations), and
//   4. SELECTS the c best dichotomies under the global cost function
//      restricted to the subset (number of violated faces, or cubes /
//      literals of the encoded constraints per Figure 9).
// Output constraints are not optimized by this heuristic (the paper's
// Tables 2 and 3 use it for input constraints); they are checked only
// through the returned cost/violations.
#pragma once

#include <cstdint>

#include "core/constraints.h"
#include "core/cost.h"
#include "core/encoding.h"
#include "util/exec.h"

namespace encodesat {

struct BoundedEncodeOptions {
  CostKind cost = CostKind::kCubes;
  /// Budget of cost evaluations per selection step; beyond it the selection
  /// falls back from exhaustive enumeration to greedy + hill climbing.
  int max_selection_evals = 400;
  /// Passes of the partition-improvement loop.
  int kl_passes = 8;
  /// Seed for the initial partition.
  std::uint64_t seed = 1;
  /// Use single-pass ESPRESSO for cost evaluation inside the recursion.
  bool fast_cost = true;
  /// Passes of the final pairwise-swap improvement on the derived codes
  /// (incremental per-face re-evaluation; 0 disables).
  int polish_passes = 3;
  /// Budget of per-face cost evaluations the polish may spend.
  int polish_eval_budget = 60000;
};

struct BoundedEncodeResult {
  Encoding encoding;
  /// Final cost of the returned encoding (full-quality evaluation).
  EncodingCost cost;
  /// Set when a shared Budget expired mid-optimization: the encoding is
  /// still valid (codes are unique by construction), just less polished.
  Truncation truncation = Truncation::kNone;
};

/// Encodes all symbols of cs in exactly `code_length` bits, minimizing the
/// chosen cost function heuristically. Requires
/// code_length >= ceil(log2(num_symbols)) (throws std::invalid_argument).
/// `ctx.budget` (deadline/cancellation) degrades the local search
/// gracefully — selection and polish stop improving when it expires, the
/// structurally safe encoding is always returned.
BoundedEncodeResult bounded_encode(const ConstraintSet& cs, int code_length,
                                   const BoundedEncodeOptions& opts = {},
                                   const ExecContext& ctx = {});

/// Minimum number of bits needed to give distinct codes to n symbols.
int minimum_code_length(std::uint32_t n);

}  // namespace encodesat
