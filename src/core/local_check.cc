#include "core/local_check.h"

#include <vector>

#include "core/generate.h"
#include "core/output_rules.h"

namespace encodesat {

namespace {

// Detects a directed cycle (of length >= 2) in the dominance digraph.
bool has_strict_dominance_cycle(std::size_t n,
                                const std::vector<std::pair<std::uint32_t,
                                                            std::uint32_t>>&
                                    edges) {
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (const auto& [a, b] : edges)
    if (a != b) adj[a].push_back(b);
  // Colors: 0 = unvisited, 1 = on stack, 2 = done.
  std::vector<int> color(n, 0);
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  for (std::uint32_t root = 0; root < n; ++root) {
    if (color[root] != 0) continue;
    stack.emplace_back(root, 0);
    color[root] = 1;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      if (next < adj[u].size()) {
        const std::uint32_t v = adj[u][next++];
        if (color[v] == 1) return true;
        if (color[v] == 0) {
          color[v] = 1;
          stack.emplace_back(v, 0);
        }
      } else {
        color[u] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

}  // namespace

bool local_consistency_feasible(const ConstraintSet& cs) {
  // Dominance edges, plus parent-over-child edges implied by disjunctives.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (const auto& d : cs.dominances())
    edges.emplace_back(d.dominator, d.dominated);
  for (const auto& d : cs.disjunctives())
    for (auto c : d.children) edges.emplace_back(d.parent, c);
  if (has_strict_dominance_cycle(cs.num_symbols(), edges)) return false;

  // Mutual dominance between distinct symbols forces equal codes.
  for (std::size_t i = 0; i < edges.size(); ++i)
    for (std::size_t j = i + 1; j < edges.size(); ++j)
      if (edges[i].first == edges[j].second &&
          edges[i].second == edges[j].first)
        return false;

  // Every initial dichotomy must have some locally valid orientation.
  for (const auto& i : generate_initial_dichotomies(cs)) {
    if (dichotomy_valid(i.dichotomy, cs)) continue;
    if (dichotomy_valid(i.dichotomy.flipped(), cs)) continue;
    return false;
  }
  return true;
}

}  // namespace encodesat
