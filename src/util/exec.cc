#include "util/exec.h"

#include <sstream>

namespace encodesat {

const char* truncation_name(Truncation t) {
  switch (t) {
    case Truncation::kNone: return "none";
    case Truncation::kDeadline: return "deadline";
    case Truncation::kWorkBudget: return "work_budget";
    case Truncation::kTermLimit: return "term_limit";
    case Truncation::kNodeLimit: return "node_limit";
    case Truncation::kCancelled: return "cancelled";
  }
  return "unknown";
}

StageStats* StageStats::add_child(const std::string& child_name) {
  children.emplace_back(child_name);
  return &children.back();
}

const StageStats* StageStats::find(const std::string& stage_name) const {
  if (name == stage_name) return this;
  for (const StageStats& c : children)
    if (const StageStats* hit = c.find(stage_name)) return hit;
  return nullptr;
}

namespace {

void escape_json(const std::string& s, std::ostream& out) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

void emit_json(const StageStats& s, std::ostream& out) {
  out << "{\"name\":\"";
  escape_json(s.name, out);
  out << "\",\"elapsed_s\":" << s.elapsed_seconds << ",\"work\":" << s.work
      << ",\"items\":" << s.items << ",\"truncation\":\""
      << truncation_name(s.truncation) << "\",\"children\":[";
  for (std::size_t i = 0; i < s.children.size(); ++i) {
    if (i) out << ',';
    emit_json(s.children[i], out);
  }
  out << "]}";
}

}  // namespace

std::string StageStats::to_json() const {
  std::ostringstream out;
  emit_json(*this, out);
  return out.str();
}

StageScope::StageScope(const ExecContext& parent, const char* stage_name)
    : ctx_{parent.budget,
           parent.stats ? parent.stats->add_child(stage_name) : nullptr,
           parent.num_threads, parent.tracer, parent.metrics},
      name_(stage_name),
      start_(Budget::Clock::now()) {
  if (ctx_.tracer) ctx_.tracer->begin_span(name_);
}

StageScope::~StageScope() {
  if (ctx_.stats)
    ctx_.stats->elapsed_seconds =
        std::chrono::duration<double>(Budget::Clock::now() - start_).count();
  if (ctx_.tracer) ctx_.tracer->end_span(name_);
}

}  // namespace encodesat
