#include "util/strings.h"

namespace encodesat {

std::vector<std::string> split_ws(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && delims.find(s[i]) != std::string_view::npos) ++i;
    std::size_t j = i;
    while (j < s.size() && delims.find(s[j]) == std::string_view::npos) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace encodesat
