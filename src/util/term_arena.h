// Arena-backed flat term store for the SOP/covering hot paths.
//
// The cs/ps fold of prime generation and the unate-covering row operations
// manipulate hundreds of thousands of short bit-vectors over one fixed
// universe. Backing each one with a heap-allocated Bitset makes the fold
// allocation-bound; a TermArena instead packs every term into one
// contiguous std::uint64_t buffer at a fixed stride (words-per-term), so
//
//  * alloc/release are O(1): a bump append or a free-list pop, with no
//    per-term heap allocation (the single buffer grows geometrically);
//  * set operations are straight word loops over adjacent memory;
//  * a term is named by a TermRef (32-bit index), cheap to copy and store.
//
// The arena also provides the folded 64-bit *signature* used by the
// signature-pruned single-cube-containment pass (keep_minimal_terms of
// core/primes.cc): sig(t) = OR of all words of t, i.e. bit j of the
// signature is set iff t contains some element ≡ j (mod 64). Since
// a ⊆ b implies sig(a) & ~sig(b) == 0, one word comparison rejects most
// candidate pairs without touching the full terms.
//
// TermArena is a single-thread data structure; the pipeline's determinism
// contract is unaffected because each arena lives entirely inside one
// sequential stage (the fold) or one branch-and-bound component.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/bitset.h"

namespace encodesat {

/// Index of a term slot inside a TermArena.
using TermRef = std::uint32_t;

class TermArena {
 public:
  /// `universe` is the fixed element universe {0, ..., universe-1} of every
  /// term; `reserve_terms` pre-sizes the buffer to avoid growth in a loop
  /// whose final size is known (or bounded) up front.
  explicit TermArena(std::size_t universe, std::size_t reserve_terms = 0)
      : universe_(universe), words_(universe == 0 ? 1 : (universe + 63) / 64) {
    buf_.reserve(words_ * reserve_terms);
  }

  std::size_t universe() const { return universe_; }
  /// Words per term (the fixed stride).
  std::size_t words() const { return words_; }

  /// Allocates a zeroed term: free-list pop, else bump append.
  TermRef alloc() {
    if (!free_.empty()) {
      const TermRef t = free_.back();
      free_.pop_back();
      std::memset(&buf_[idx(t)], 0, words_ * sizeof(std::uint64_t));
      ++live_;
      ++reuses_;
      return t;
    }
    const TermRef t = static_cast<TermRef>(buf_.size() / words_);
    buf_.resize(buf_.size() + words_, 0);
    ++live_;
    ++allocs_;
    return t;
  }

  /// Allocates a copy of `src`.
  TermRef clone(TermRef src) {
    if (!free_.empty()) {
      const TermRef t = free_.back();
      free_.pop_back();
      std::memcpy(&buf_[idx(t)], &buf_[idx(src)],
                  words_ * sizeof(std::uint64_t));
      ++live_;
      ++reuses_;
      return t;
    }
    // Append-then-copy: resize may reallocate, so re-read src afterwards.
    const TermRef t = static_cast<TermRef>(buf_.size() / words_);
    buf_.resize(buf_.size() + words_, 0);
    std::memcpy(&buf_[idx(t)], &buf_[idx(src)], words_ * sizeof(std::uint64_t));
    ++live_;
    ++allocs_;
    return t;
  }

  /// Returns the slot to the free list for O(1) reuse.
  void release(TermRef t) {
    free_.push_back(t);
    --live_;
  }

  std::uint64_t* data(TermRef t) { return &buf_[idx(t)]; }
  const std::uint64_t* data(TermRef t) const { return &buf_[idx(t)]; }

  // --- element operations --------------------------------------------------

  bool test(TermRef t, std::size_t i) const {
    return (buf_[idx(t) + (i >> 6)] >> (i & 63)) & 1u;
  }
  void set(TermRef t, std::size_t i) {
    buf_[idx(t) + (i >> 6)] |= std::uint64_t{1} << (i & 63);
  }
  void reset(TermRef t, std::size_t i) {
    buf_[idx(t) + (i >> 6)] &= ~(std::uint64_t{1} << (i & 63));
  }

  std::size_t count(TermRef t) const {
    const std::uint64_t* w = data(t);
    std::size_t n = 0;
    for (std::size_t k = 0; k < words_; ++k)
      n += static_cast<std::size_t>(std::popcount(w[k]));
    return n;
  }

  bool empty(TermRef t) const {
    const std::uint64_t* w = data(t);
    for (std::size_t k = 0; k < words_; ++k)
      if (w[k] != 0) return false;
    return true;
  }

  /// Index of the lowest element, or universe() if empty.
  std::size_t first(TermRef t) const {
    const std::uint64_t* w = data(t);
    for (std::size_t k = 0; k < words_; ++k)
      if (w[k] != 0)
        return k * 64 + static_cast<std::size_t>(std::countr_zero(w[k]));
    return universe_;
  }

  /// Calls f(i) for each element i of t in increasing order.
  template <class F>
  void for_each(TermRef t, F&& f) const {
    const std::uint64_t* wp = data(t);
    for (std::size_t k = 0; k < words_; ++k) {
      std::uint64_t w = wp[k];
      while (w != 0) {
        f(k * 64 + static_cast<std::size_t>(std::countr_zero(w)));
        w &= w - 1;
      }
    }
  }

  // --- word-level set operations -------------------------------------------

  void copy(TermRef dst, TermRef src) {
    std::memcpy(&buf_[idx(dst)], &buf_[idx(src)],
                words_ * sizeof(std::uint64_t));
  }
  void or_into(TermRef dst, TermRef src) {
    std::uint64_t* d = data(dst);
    const std::uint64_t* s = data(src);
    for (std::size_t k = 0; k < words_; ++k) d[k] |= s[k];
  }
  /// dst = a & ~b (the covering-table "available columns" operation).
  void andnot_of(TermRef dst, TermRef a, TermRef b) {
    std::uint64_t* d = data(dst);
    const std::uint64_t* x = data(a);
    const std::uint64_t* y = data(b);
    for (std::size_t k = 0; k < words_; ++k) d[k] = x[k] & ~y[k];
  }

  bool is_subset(TermRef a, TermRef b) const {
    const std::uint64_t* x = data(a);
    const std::uint64_t* y = data(b);
    for (std::size_t k = 0; k < words_; ++k)
      if ((x[k] & ~y[k]) != 0) return false;
    return true;
  }
  bool intersects(TermRef a, TermRef b) const {
    const std::uint64_t* x = data(a);
    const std::uint64_t* y = data(b);
    for (std::size_t k = 0; k < words_; ++k)
      if ((x[k] & y[k]) != 0) return true;
    return false;
  }
  bool equal(TermRef a, TermRef b) const {
    return std::memcmp(data(a), data(b),
                       words_ * sizeof(std::uint64_t)) == 0;
  }
  /// Word-lexicographic order (most-significant word first), matching
  /// Bitset::operator< — used for canonical sorting and adjacent dedup.
  bool less(TermRef a, TermRef b) const {
    const std::uint64_t* x = data(a);
    const std::uint64_t* y = data(b);
    for (std::size_t k = words_; k-- > 0;)
      if (x[k] != y[k]) return x[k] < y[k];
    return false;
  }

  /// Folded containment signature: bit j set iff the term contains an
  /// element ≡ j (mod 64). a ⊆ b implies sig(a) & ~sig(b) == 0.
  std::uint64_t signature(TermRef t) const {
    const std::uint64_t* w = data(t);
    std::uint64_t s = 0;
    for (std::size_t k = 0; k < words_; ++k) s |= w[k];
    return s;
  }

  // --- Bitset conversion shims ---------------------------------------------

  /// `b.size()` must equal universe().
  TermRef from_bitset(const Bitset& b) {
    assert(b.size() == universe_);
    const TermRef t = alloc();
    std::uint64_t* d = data(t);
    b.for_each(
        [&](std::size_t i) { d[i >> 6] |= std::uint64_t{1} << (i & 63); });
    return t;
  }

  Bitset to_bitset(TermRef t) const {
    Bitset b(universe_);
    for_each(t, [&](std::size_t i) { b.set(i); });
    return b;
  }

  // --- observability -------------------------------------------------------

  /// Terms currently allocated (not on the free list).
  std::size_t live_terms() const { return live_; }
  /// Total slots ever created; the buffer never shrinks, so this is also the
  /// high-water mark.
  std::size_t capacity_terms() const { return buf_.size() / words_; }
  /// Peak buffer footprint in bytes (the buffer only grows).
  std::size_t peak_bytes() const { return buf_.size() * sizeof(std::uint64_t); }
  /// Fresh slot creations (bump appends that grew the buffer).
  std::uint64_t total_allocs() const { return allocs_; }
  /// Allocations satisfied from the free list without touching the heap —
  /// the number the arena design exists to maximize.
  std::uint64_t total_reuses() const { return reuses_; }

 private:
  std::size_t idx(TermRef t) const { return std::size_t{t} * words_; }

  std::size_t universe_;
  std::size_t words_;
  std::size_t live_ = 0;
  std::uint64_t allocs_ = 0;
  std::uint64_t reuses_ = 0;
  std::vector<std::uint64_t> buf_;
  std::vector<TermRef> free_;
};

/// RAII batch release: tracks refs allocated for one scope (one search node,
/// one fold) and returns them to the arena on scope exit, covering early
/// returns in recursive code.
class TermGuard {
 public:
  explicit TermGuard(TermArena& arena) : arena_(arena) {}
  TermGuard(const TermGuard&) = delete;
  TermGuard& operator=(const TermGuard&) = delete;
  ~TermGuard() {
    for (TermRef t : refs_) arena_.release(t);
  }

  /// Registers `t` for release when this guard leaves scope.
  TermRef track(TermRef t) {
    refs_.push_back(t);
    return t;
  }

 private:
  TermArena& arena_;
  std::vector<TermRef> refs_;
};

}  // namespace encodesat
