// Dynamic fixed-universe bitset used throughout the encoding framework.
//
// Dichotomy blocks, prime-generation SOP terms, covering-table rows and
// multi-valued cube parts are all sets over a small dense universe, so one
// word-packed bitset with set-algebra operations serves every subsystem.
#pragma once

#include <cstdint>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace encodesat {

/// A set over the universe {0, ..., size()-1}, packed 64 elements per word.
///
/// All binary operations require both operands to have the same universe
/// size; a mismatch throws std::invalid_argument in every build mode (a
/// mismatched universe is always a caller bug, and the word loops would
/// otherwise silently truncate). The value semantics are cheap
/// enough for the problem sizes in this domain (tens to a few thousand
/// elements), which keeps the algorithm code free of aliasing concerns.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t size) : size_(size), words_((size + 63) / 64, 0) {}

  /// Universe size (number of addressable positions), not the popcount.
  std::size_t size() const { return size_; }

  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset(std::size_t i) { words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }
  void assign(std::size_t i, bool v) { v ? set(i) : reset(i); }

  void clear();
  void set_all();

  /// Number of elements present.
  std::size_t count() const;
  bool empty() const;
  bool any() const { return !empty(); }

  /// Index of the lowest set bit, or size() if empty.
  std::size_t first() const;
  /// Index of the lowest set bit strictly greater than i, or size() if none.
  std::size_t next(std::size_t i) const;

  Bitset& operator|=(const Bitset& o);
  Bitset& operator&=(const Bitset& o);
  Bitset& operator^=(const Bitset& o);
  /// Set difference: removes every element of o from this set.
  Bitset& subtract(const Bitset& o);

  friend Bitset operator|(Bitset a, const Bitset& b) { return a |= b; }
  friend Bitset operator&(Bitset a, const Bitset& b) { return a &= b; }
  friend Bitset operator^(Bitset a, const Bitset& b) { return a ^= b; }

  bool operator==(const Bitset& o) const {
    return size_ == o.size_ && words_ == o.words_;
  }
  bool operator!=(const Bitset& o) const { return !(*this == o); }
  /// Lexicographic order on the word representation; used for canonical
  /// sorting and dedup of dichotomies and SOP terms.
  bool operator<(const Bitset& o) const;

  /// True if this set is a subset of (or equal to) o.
  bool is_subset_of(const Bitset& o) const;
  bool intersects(const Bitset& o) const;

  /// Calls f(i) for each element i in increasing order.
  void for_each(const std::function<void(std::size_t)>& f) const;
  std::vector<std::size_t> to_vector() const;

  /// "{1,4,7}" rendering for diagnostics.
  std::string to_string() const;

  std::size_t hash() const;

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

struct BitsetHash {
  std::size_t operator()(const Bitset& b) const { return b.hash(); }
};

}  // namespace encodesat
