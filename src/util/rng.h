// Deterministic pseudo-random number generation for benchmark-workload
// synthesis and the simulated-annealing baseline.
//
// A fixed, seedable generator (splitmix64 core) keeps every experiment
// reproducible across platforms, unlike std::default_random_engine whose
// distribution implementations vary between standard libraries.
#pragma once

#include <cstdint>

namespace encodesat {

/// splitmix64: tiny, fast, passes BigCrush for this usage; fully portable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound) - 1;
    std::uint64_t v = next_u64();
    while (v > limit) v = next_u64();
    return v % bound;
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool next_bool(double p = 0.5) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace encodesat
