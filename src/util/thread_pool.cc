#include "util/thread_pool.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace encodesat {

namespace {

std::atomic<std::uint64_t> g_parallel_calls{0};
std::atomic<std::uint64_t> g_tasks{0};
std::atomic<std::uint64_t> g_workers_spawned{0};

}  // namespace

PoolCounters pool_counters() {
  PoolCounters c;
  c.parallel_calls = g_parallel_calls.load(std::memory_order_relaxed);
  c.tasks = g_tasks.load(std::memory_order_relaxed);
  c.workers_spawned = g_workers_spawned.load(std::memory_order_relaxed);
  return c;
}

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int resolve_threads(int requested) {
  return requested <= 0 ? hardware_threads() : requested;
}

void parallel_for(std::size_t n, int num_threads,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  g_parallel_calls.fetch_add(1, std::memory_order_relaxed);
  g_tasks.fetch_add(n, std::memory_order_relaxed);
  if (num_threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(num_threads), n);
  g_workers_spawned.fetch_add(workers - 1, std::memory_order_relaxed);
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) threads.emplace_back(worker);
  worker();
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace encodesat
