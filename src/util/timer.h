// Wall-clock timing for the benchmark harnesses (Table 1/3 report runtimes).
#pragma once

#include <chrono>

namespace encodesat {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace encodesat
