#include "util/bitset.h"

#include <bit>
#include <stdexcept>
#include <string>

namespace encodesat {

namespace {
// Mask selecting only the bits that belong to the universe in the last word.
std::uint64_t tail_mask(std::size_t size) {
  const std::size_t rem = size & 63;
  return rem == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << rem) - 1;
}

// Binary set operations are only meaningful over a shared universe; a
// mismatch is always a caller bug, so it throws in every build mode (the
// word loops below would otherwise silently truncate or read out of range).
// Kept out of line and cold so the callers — some sit in O(n²) loops —
// pay only a predictable compare on the match path.
[[gnu::cold, gnu::noinline]] void throw_universe_mismatch(std::size_t a,
                                                          std::size_t b,
                                                          const char* op) {
  throw std::invalid_argument(std::string("Bitset::") + op +
                              ": universe mismatch (" + std::to_string(a) +
                              " vs " + std::to_string(b) + ")");
}

inline void check_same_universe(std::size_t a, std::size_t b, const char* op) {
  if (a != b) throw_universe_mismatch(a, b, op);
}
}  // namespace

void Bitset::clear() {
  for (auto& w : words_) w = 0;
}

void Bitset::set_all() {
  for (auto& w : words_) w = ~std::uint64_t{0};
  if (!words_.empty()) words_.back() &= tail_mask(size_);
}

std::size_t Bitset::count() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool Bitset::empty() const {
  for (auto w : words_)
    if (w != 0) return false;
  return true;
}

std::size_t Bitset::first() const {
  for (std::size_t k = 0; k < words_.size(); ++k)
    if (words_[k] != 0)
      return k * 64 + static_cast<std::size_t>(std::countr_zero(words_[k]));
  return size_;
}

std::size_t Bitset::next(std::size_t i) const {
  ++i;
  if (i >= size_) return size_;
  std::size_t k = i >> 6;
  std::uint64_t w = words_[k] & (~std::uint64_t{0} << (i & 63));
  while (true) {
    if (w != 0) return k * 64 + static_cast<std::size_t>(std::countr_zero(w));
    if (++k == words_.size()) return size_;
    w = words_[k];
  }
}

Bitset& Bitset::operator|=(const Bitset& o) {
  check_same_universe(size_, o.size_, "operator|=");
  for (std::size_t k = 0; k < words_.size(); ++k) words_[k] |= o.words_[k];
  return *this;
}

Bitset& Bitset::operator&=(const Bitset& o) {
  check_same_universe(size_, o.size_, "operator&=");
  for (std::size_t k = 0; k < words_.size(); ++k) words_[k] &= o.words_[k];
  return *this;
}

Bitset& Bitset::operator^=(const Bitset& o) {
  check_same_universe(size_, o.size_, "operator^=");
  for (std::size_t k = 0; k < words_.size(); ++k) words_[k] ^= o.words_[k];
  return *this;
}

Bitset& Bitset::subtract(const Bitset& o) {
  check_same_universe(size_, o.size_, "subtract");
  for (std::size_t k = 0; k < words_.size(); ++k) words_[k] &= ~o.words_[k];
  return *this;
}

bool Bitset::operator<(const Bitset& o) const {
  if (size_ != o.size_) return size_ < o.size_;
  for (std::size_t k = words_.size(); k-- > 0;)
    if (words_[k] != o.words_[k]) return words_[k] < o.words_[k];
  return false;
}

bool Bitset::is_subset_of(const Bitset& o) const {
  check_same_universe(size_, o.size_, "is_subset_of");
  for (std::size_t k = 0; k < words_.size(); ++k)
    if ((words_[k] & ~o.words_[k]) != 0) return false;
  return true;
}

bool Bitset::intersects(const Bitset& o) const {
  check_same_universe(size_, o.size_, "intersects");
  for (std::size_t k = 0; k < words_.size(); ++k)
    if ((words_[k] & o.words_[k]) != 0) return true;
  return false;
}

void Bitset::for_each(const std::function<void(std::size_t)>& f) const {
  for (std::size_t k = 0; k < words_.size(); ++k) {
    std::uint64_t w = words_[k];
    while (w != 0) {
      const int b = std::countr_zero(w);
      f(k * 64 + static_cast<std::size_t>(b));
      w &= w - 1;
    }
  }
}

std::vector<std::size_t> Bitset::to_vector() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each([&](std::size_t i) { out.push_back(i); });
  return out;
}

std::string Bitset::to_string() const {
  std::string s = "{";
  bool firstItem = true;
  for_each([&](std::size_t i) {
    if (!firstItem) s += ',';
    s += std::to_string(i);
    firstItem = false;
  });
  s += '}';
  return s;
}

std::size_t Bitset::hash() const {
  // FNV-1a over words; adequate for hash-set dedup of terms/dichotomies.
  std::size_t h = 1469598103934665603ull;
  for (auto w : words_) {
    h ^= static_cast<std::size_t>(w);
    h *= 1099511628211ull;
  }
  h ^= size_;
  return h;
}

}  // namespace encodesat
