// Minimal string helpers shared by the constraint and KISS2 parsers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace encodesat {

/// Splits on any run of the given delimiter characters; empty tokens are
/// dropped, so "  a  b " -> {"a", "b"}.
std::vector<std::string> split_ws(std::string_view s,
                                  std::string_view delims = " \t\r\n");

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// True if s starts with the given prefix.
bool starts_with(std::string_view s, std::string_view prefix);

}  // namespace encodesat
