// Shared execution context for the encoding pipeline.
//
// Every stage of the paper's flow (Fig. 7: initial dichotomies -> raise ->
// prime generation -> unate covering) historically carried its own ad-hoc
// budget knob (`max_terms`, `max_work`, `max_nodes`, ...). This header
// unifies them behind three small pieces:
//
//  * `Budget`    — a wall-clock deadline, a cumulative work budget and a
//                  cooperative cancellation flag, safe to poll and charge
//                  from many threads at once. The first limit to trip is
//                  recorded as the `Truncation` reason.
//  * `StageStats`— a per-stage observability record (elapsed time, work
//                  units, item counts, truncation reason) forming a tree
//                  that mirrors the pipeline, serializable as JSON.
//  * `ExecContext` / `StageScope` — the plumbing handed down the call
//                  chain: a borrowed budget, a stats node to report into
//                  and a thread count for the parallel fan-out paths.
//
// Determinism contract: work budgets, term/node limits and thread counts
// never change *which* result is produced, only whether a stage truncates —
// and work-based truncation points are independent of the thread count.
// Wall-clock deadlines and cancellation are inherently racy; they guarantee
// prompt, valid, truncation-flagged returns, not reproducible ones.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace encodesat {

/// Destination for begin/end span events. StageScope (and the TRACE_SCOPE
/// macro of src/obs/trace.h) emit into the sink installed on ExecContext;
/// with no sink installed the emission is a single null check. The concrete
/// implementation is obs::Tracer (per-thread buffers flushed as Chrome
/// trace-event JSON); this interface lives here so the util layer never
/// depends on src/obs.
///
/// Contract: begin/end pairs are strictly nested per thread (RAII), and
/// `name` must outlive the sink — pass string literals.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void begin_span(const char* name) = 0;
  virtual void end_span(const char* name) = 0;
};

class MetricsRegistry;  // src/obs/counters.h

/// Why a stage stopped before running to completion.
enum class Truncation : std::uint8_t {
  kNone = 0,    ///< ran to completion
  kDeadline,    ///< wall-clock deadline passed
  kWorkBudget,  ///< cumulative work budget exhausted
  kTermLimit,   ///< stage-local term budget (prime-generation SOP) exceeded
  kNodeLimit,   ///< stage-local node budget (branch-and-bound) exceeded
  kCancelled,   ///< cooperative cancellation requested
};

/// Stable lower-case name ("none", "deadline", ...) for logs and JSON.
const char* truncation_name(Truncation t);

/// Cooperative cancellation flag, sharable across threads. The requesting
/// side calls `cancel()`; pipeline stages observe it through Budget::poll.
class CancelToken {
 public:
  void cancel() { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

/// A shared, thread-safe budget for one solve. Charging work is a relaxed
/// atomic add (cheap enough for inner loops); polling the deadline reads
/// the clock and should be amortized (every fold / every ~1024 nodes).
/// Budgets are borrowed by the pipeline via ExecContext and must outlive
/// the call; they are neither copyable nor movable.
class Budget {
 public:
  using Clock = std::chrono::steady_clock;

  Budget() = default;
  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  /// Sets the deadline `seconds` from now; <= 0 means already expired.
  void set_deadline_after(double seconds) {
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
    has_deadline_ = true;
  }
  void set_deadline(Clock::time_point t) {
    deadline_ = t;
    has_deadline_ = true;
  }
  /// 0 means unlimited.
  void set_work_limit(std::uint64_t units) { work_limit_ = units; }
  /// The token is borrowed and may be shared by many budgets.
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }

  /// Adds `units` of work. Returns true while every limit still holds.
  /// Work accounting is deterministic: the same call sequence trips at the
  /// same charge regardless of wall-clock time or thread interleaving
  /// (the counter is a single atomic total).
  bool charge(std::uint64_t units) {
    if (work_limit_ != 0) {
      const std::uint64_t used =
          work_used_.fetch_add(units, std::memory_order_relaxed) + units;
      if (used > work_limit_) trip(Truncation::kWorkBudget);
    } else {
      work_used_.fetch_add(units, std::memory_order_relaxed);
    }
    return !exhausted();
  }

  /// Checks deadline and cancellation (reads the clock; amortize calls).
  /// Returns true while the budget still holds.
  bool poll() {
    if (exhausted()) return false;
    if (cancel_ && cancel_->cancelled()) {
      trip(Truncation::kCancelled);
      return false;
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      trip(Truncation::kDeadline);
      return false;
    }
    return true;
  }

  /// Deadline introspection, for waiters that block on something other
  /// than pipeline work (e.g. a coalesced solve waiting on its leader).
  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

  /// Cheap (no clock read): true once any limit has tripped.
  bool exhausted() const {
    return reason_.load(std::memory_order_relaxed) !=
           static_cast<std::uint8_t>(Truncation::kNone);
  }
  Truncation reason() const {
    return static_cast<Truncation>(reason_.load(std::memory_order_relaxed));
  }
  std::uint64_t work_used() const {
    return work_used_.load(std::memory_order_relaxed);
  }

  /// Records a stage-local limit (term/node budgets) so callers see one
  /// uniform truncation reason. First trip wins.
  void trip(Truncation t) {
    std::uint8_t expected = static_cast<std::uint8_t>(Truncation::kNone);
    reason_.compare_exchange_strong(expected, static_cast<std::uint8_t>(t),
                                    std::memory_order_relaxed);
  }

 private:
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::uint64_t work_limit_ = 0;
  const CancelToken* cancel_ = nullptr;
  std::atomic<std::uint64_t> work_used_{0};
  std::atomic<std::uint8_t> reason_{
      static_cast<std::uint8_t>(Truncation::kNone)};
};

/// Observability record for one pipeline stage. Stages form a tree rooted
/// at the solve; parallel stages pre-create one child per task and let each
/// worker fill only its own slot, so no locking is needed.
struct StageStats {
  std::string name;
  double elapsed_seconds = 0;
  /// Work units consumed (stage-specific scale; bitset word operations for
  /// the prime-generation stage, cost evaluations for the heuristics, ...).
  std::uint64_t work = 0;
  /// Stage-specific item count (SOP terms, search nodes, covering rows...).
  std::uint64_t items = 0;
  Truncation truncation = Truncation::kNone;
  /// Deque, not vector: add_child must hand out pointers that stay valid
  /// while later siblings are appended (StageScope holds its node across
  /// nested stages).
  std::deque<StageStats> children;

  StageStats() = default;
  explicit StageStats(std::string stage_name) : name(std::move(stage_name)) {}

  /// Appends a child stage and returns it. The pointer remains valid for
  /// the parent's lifetime (children are deque-backed; growth never moves
  /// existing nodes).
  StageStats* add_child(const std::string& child_name);

  /// Depth-first search by stage name; nullptr when absent.
  const StageStats* find(const std::string& stage_name) const;

  /// {"name":...,"elapsed_s":...,"work":...,"items":...,"truncation":...,
  ///  "children":[...]}
  std::string to_json() const;
};

/// The execution context handed down the pipeline. All members are borrowed
/// and optional: a default-constructed context means "unlimited budget, no
/// stats, sequential" and keeps every legacy entry point working unchanged.
struct ExecContext {
  Budget* budget = nullptr;
  StageStats* stats = nullptr;
  /// Worker threads for the parallel fan-out paths; <= 1 means sequential.
  int num_threads = 1;
  /// Span sink for the tracing subsystem (src/obs/trace.h); null disables
  /// span emission at the cost of one branch per stage.
  TraceSink* tracer = nullptr;
  /// Counters registry (src/obs/counters.h); null disables counters.
  MetricsRegistry* metrics = nullptr;

  bool exhausted() const { return budget && budget->exhausted(); }
  /// True while within budget; polls deadline/cancellation when present.
  bool poll() const { return !budget || budget->poll(); }
  /// True while within budget; charges `units` of work when present.
  bool charge(std::uint64_t units) const {
    return !budget || budget->charge(units);
  }
  Truncation reason() const {
    return budget ? budget->reason() : Truncation::kNone;
  }
};

/// RAII stage frame: creates a child stats node under the parent context's
/// stats (when any), times the stage, and exposes a derived context whose
/// stats pointer targets the child. Budget and thread count pass through.
class StageScope {
 public:
  StageScope(const ExecContext& parent, const char* stage_name);
  ~StageScope();

  /// Context for nested stages: same budget/threads, stats -> this stage.
  const ExecContext& ctx() const { return ctx_; }
  /// This stage's stats node; nullptr when the parent records no stats.
  StageStats* stats() { return ctx_.stats; }

  void add_work(std::uint64_t units) {
    if (ctx_.stats) ctx_.stats->work += units;
  }
  void add_items(std::uint64_t n) {
    if (ctx_.stats) ctx_.stats->items += n;
  }
  void set_truncation(Truncation t) {
    if (ctx_.stats) ctx_.stats->truncation = t;
  }

 private:
  ExecContext ctx_;
  const char* name_;
  Budget::Clock::time_point start_;
};

}  // namespace encodesat
