// Minimal std::thread fan-out for the embarrassingly-parallel hot paths
// (independent unate-covering subproblems, batch encoding, per-row table
// construction).
//
// `parallel_for(n, threads, fn)` runs fn(0..n-1) exactly once each, pulling
// indices from a shared atomic counter across at most `threads` workers.
// Callers write results into pre-sized per-index slots, so the merged
// output is identical to the sequential loop no matter how work is
// scheduled — the determinism contract the pipeline tests assert.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace encodesat {

/// Number of hardware threads, always >= 1.
int hardware_threads();

/// Resolves a requested worker count: <= 0 means "all hardware threads".
int resolve_threads(int requested);

/// Runs fn(i) for every i in [0, n). With num_threads <= 1 (or n <= 1) the
/// loop runs inline on the calling thread — the reference sequential path.
/// Otherwise min(num_threads, n) workers drain a shared index counter.
/// The first exception thrown by any fn is rethrown on the calling thread
/// after all workers have stopped (remaining indices are abandoned).
void parallel_for(std::size_t n, int num_threads,
                  const std::function<void(std::size_t)>& fn);

/// Process-global fan-out counters, maintained by parallel_for with relaxed
/// atomic adds. They are *scheduling-dependent* (workers_spawned varies with
/// the thread count and instance sizes), so telemetry reports them under a
/// separate "process" section and they never enter a counter fingerprint.
struct PoolCounters {
  std::uint64_t parallel_calls = 0;   ///< parallel_for invocations
  std::uint64_t tasks = 0;            ///< total indices dispatched
  std::uint64_t workers_spawned = 0;  ///< extra std::threads created
};

/// Snapshot of the counters since process start (monotonic).
PoolCounters pool_counters();

}  // namespace encodesat
