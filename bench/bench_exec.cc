// Sequential-vs-parallel benchmarks (google-benchmark) for the execution
// subsystem: the unate-cover component fan-out, whole exact solves through
// the Solver facade at varying thread counts, batch encoding, and the raw
// parallel_for / Budget overheads. Thread counts beyond the hardware are
// clamped by resolve_threads.
#include <benchmark/benchmark.h>

#include "core/solver.h"
#include "covering/unate.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace encodesat;

namespace {

// Overlapping triples + long-stride pairs (same family as the solver
// tests): dense, irregular incompatibilities.
ConstraintSet dense_faces(int n) {
  ConstraintSet cs;
  for (int i = 0; i < n; ++i) cs.symbols().intern("s" + std::to_string(i));
  auto face = [&](std::vector<std::uint32_t> m) {
    cs.add_face_ids(std::move(m));
  };
  for (int i = 0; i + 2 < n; ++i)
    face({static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i + 1),
          static_cast<std::uint32_t>(i + 2)});
  for (int i = 0; i + 7 < n; i += 2)
    face({static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i + 7)});
  for (int i = 0; i + 11 < n; i += 3)
    face({static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i + 11)});
  return cs;
}

// k disjoint cyclic cores of `cycle` columns each: the root decomposition
// yields k independent sub-searches, the best case for the fan-out.
UnateCoverProblem block_cycles(std::size_t k, std::size_t cycle) {
  UnateCoverProblem p;
  p.num_columns = k * cycle;
  for (std::size_t b = 0; b < k; ++b)
    for (std::size_t r = 0; r < cycle; ++r) {
      Bitset row(p.num_columns);
      row.set(b * cycle + r);
      row.set(b * cycle + (r + 1) % cycle);
      row.set(b * cycle + (r + 2) % cycle);
      p.rows.push_back(row);
    }
  return p;
}

void BM_UnateCoverComponents(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  const UnateCoverProblem p = block_cycles(8, 15);
  const ExecContext ctx{nullptr, nullptr, threads};
  for (auto _ : state) {
    const UnateCoverSolution sol = solve_unate_cover(p, {}, ctx);
    benchmark::DoNotOptimize(sol.cost);
  }
}
BENCHMARK(BM_UnateCoverComponents)->Arg(1)->Arg(2)->Arg(4);

void BM_SolverExact(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  const ConstraintSet cs = dense_faces(10);
  const Solver solver(cs);
  SolveOptions opts;
  opts.exec.threads = threads;
  for (auto _ : state) {
    const SolveResult res = solver.encode(opts);
    benchmark::DoNotOptimize(res.encoding.bits);
  }
}
BENCHMARK(BM_SolverExact)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_EncodeBatch(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  std::vector<ConstraintSet> sets;
  for (int i = 0; i < 8; ++i) sets.push_back(dense_faces(8 + (i & 1)));
  SolveOptions opts;
  opts.exec.threads = threads;
  for (auto _ : state) {
    const auto results = encode_batch(sets, opts);
    benchmark::DoNotOptimize(results.size());
  }
}
BENCHMARK(BM_EncodeBatch)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_BoundedLengthsSweep(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  const ConstraintSet cs = dense_faces(12);
  const std::vector<int> lengths{4, 5, 6, 7};
  for (auto _ : state) {
    const auto results = bounded_encode_lengths(cs, lengths, {}, threads);
    benchmark::DoNotOptimize(results.size());
  }
}
BENCHMARK(BM_BoundedLengthsSweep)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ParallelForOverhead(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  std::vector<std::uint64_t> slots(1 << 14);
  for (auto _ : state) {
    parallel_for(slots.size(), threads,
                 [&](std::size_t i) { slots[i] = i * 2654435761u; });
    benchmark::DoNotOptimize(slots.data());
  }
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(4);

void BM_BudgetCharge(benchmark::State& state) {
  Budget budget;
  for (auto _ : state) benchmark::DoNotOptimize(budget.charge(3));
}
BENCHMARK(BM_BudgetCharge);

void BM_BudgetPoll(benchmark::State& state) {
  Budget budget;
  budget.set_deadline_after(3600.0);
  for (auto _ : state) benchmark::DoNotOptimize(budget.poll());
}
BENCHMARK(BM_BudgetPoll);

}  // namespace

BENCHMARK_MAIN();
