// Regenerates Table 1: exact input and output encoding on the MCNC-like
// suite. For each machine we run the full pipeline — synthesize the FSM,
// derive mixed input/output constraints by symbolic minimization, then run
// the exact encoder — and report the paper's columns: #states, #valid
// primes, #bits of the minimum-length satisfying encoding, and time.
// Machines whose prime generation exceeds the 50000-term budget print '*',
// exactly as the paper does for planet and vmecont.
#include <cstdio>
#include <string>

#include "core/solver.h"
#include "core/verify.h"
#include "fsm/constraints_gen.h"
#include "fsm/mcnc_like.h"
#include "util/timer.h"

using namespace encodesat;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  // The 16 machines of the paper's Table 1.
  const char* names[] = {"bbsse", "cse",     "dk16",  "dk16x",
                         "dk512", "donfile", "exlinp", "keyb",
                         "kirkman", "master", "planet", "s1",
                         "s1a",   "sand",    "tbk",   "vmecont"};

  std::printf("Table 1: exact input and output encoding\n");
  std::printf("%-9s %7s %6s %5s %8s %7s %6s %9s\n", "Name", "#States",
              "#Cons", "#Dom", "#Primes", "#Bits", "OK", "Time(s)");
  for (const char* name : names) {
    const Fsm fsm = make_mcnc_like(benchmark_spec(name));
    ConstraintGenOptions gopts;
    // Scale the output-constraint budget with the machine, as a symbolic
    // minimizer naturally would (more states -> more covering effects).
    gopts.max_dominance = static_cast<int>(fsm.num_states()) * 2;
    gopts.max_disjunctive = static_cast<int>(fsm.num_states()) / 4;
    const ConstraintSet cs = generate_mixed_constraints(fsm, gopts);

    Timer t;
    SolveOptions opts;
    opts.pipeline = SolveOptions::Pipeline::kExact;
    opts.exact.prime_options.max_terms = 50000;
    opts.exact.cover_options.max_nodes = quick ? 20000 : 300000;
    const SolveResult res = Solver(cs).encode(opts);
    const double secs = t.elapsed_seconds();

    if (res.status == SolveResult::Status::kTruncated) {
      std::printf("%-9s %7u %6zu %5zu %8s %7s %6s %9.2f\n", name,
                  fsm.num_states(), cs.faces().size(),
                  cs.dominances().size() + cs.disjunctives().size(), "*", "*",
                  "*", secs);
      continue;
    }
    if (res.status == SolveResult::Status::kInfeasible) {
      std::printf("%-9s %7u %6zu %5zu %8s %7s %6s %9.2f\n", name,
                  fsm.num_states(), cs.faces().size(),
                  cs.dominances().size() + cs.disjunctives().size(), "-",
                  "infeas", "-", secs);
      continue;
    }
    const bool ok = verify_encoding(res.encoding, cs).empty();
    std::printf("%-9s %7u %6zu %5zu %8zu %7d %6s %9.2f\n", name,
                fsm.num_states(), cs.faces().size(),
                cs.dominances().size() + cs.disjunctives().size(),
                res.num_valid_primes, res.encoding.bits,
                ok ? (res.minimal ? "min" : "ub") : "BAD", secs);
  }
  std::printf("\n'*' = prime generation exceeded 50000 terms (paper: planet,"
              " vmecont); 'ub' = covering budget hit, length is an upper "
              "bound.\n");
  std::printf("Workloads are synthetic MCNC-size machines (see DESIGN.md); "
              "compare shapes, not absolute numbers.\n");
  return 0;
}
