// Binate-cover engine benchmark: the rebuilt branch-and-bound engine
// (src/covering/binate.cc — root reductions, component decomposition,
// arena-backed explicit-stack search) against a verbatim copy of the
// pre-rebuild recursive engine, on the same instances.
//
//   bench_covering [--reps N] [--quick] [--out FILE] [--check-reduction X]
//
// Per case the JSON records the new engine's wall time plus deterministic
// counters: `nodes` / `seed_nodes` (search nodes for the new and the seed
// engine — the headline reduction the rebuild buys), `components`,
// `propagations` and `cost`. All counters are pure functions of the
// instance, so compare_bench.py guards them exactly; wall-time regressions
// against bench/BENCH_covering.json fail the covering_bench_check ctest.
// --check-reduction X exits nonzero unless some case shows at least an
// X-fold node reduction over the seed engine.
//
// Schema: encodesat-bench-covering-v1 (compare_bench.py-compatible).
#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/binate_table.h"
#include "core/constraints.h"
#include "covering/binate.h"
#include "util/bitset.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace encodesat;

namespace seedengine {

// The pre-rebuild recursive engine, kept verbatim (minus the result-shape
// plumbing) as the node-count baseline. Do not modernise it: its job is to
// measure what the rebuild changed.
int column_weight(const BinateCoverProblem& p, std::size_t c) {
  return p.weights.empty() ? 1 : p.weights[c];
}

struct Search {
  const BinateCoverProblem& p;
  std::uint64_t max_nodes;
  std::uint64_t nodes = 0;
  bool budget_exhausted = false;
  int best_cost = std::numeric_limits<int>::max();
  bool found = false;
  std::vector<std::size_t> best_columns;

  Search(const BinateCoverProblem& problem, std::uint64_t budget)
      : p(problem), max_nodes(budget) {}

  bool row_satisfied(const BinateRow& r, const Bitset& assigned,
                     const Bitset& value) const {
    Bitset t = r.pos;
    t &= assigned;
    t &= value;
    if (t.any()) return true;
    Bitset f = r.neg;
    f &= assigned;
    f.subtract(value);
    return f.any();
  }

  int lower_bound(const Bitset& assigned, const Bitset& value) const {
    Bitset used(p.num_columns);
    int bound = 0;
    for (const BinateRow& r : p.rows) {
      if (row_satisfied(r, assigned, value)) continue;
      Bitset free_neg = r.neg;
      free_neg.subtract(assigned);
      if (free_neg.any()) continue;
      Bitset free_pos = r.pos;
      free_pos.subtract(assigned);
      if (free_pos.empty() || free_pos.intersects(used)) continue;
      used |= free_pos;
      int cheapest = std::numeric_limits<int>::max();
      free_pos.for_each([&](std::size_t c) {
        cheapest = std::min(cheapest, column_weight(p, c));
      });
      bound += cheapest;
    }
    return bound;
  }

  void solve(Bitset assigned, Bitset value, int cost) {
    if (budget_exhausted) return;
    if (++nodes > max_nodes) {
      budget_exhausted = true;
      return;
    }
    if (cost >= best_cost) return;

    bool changed = true;
    while (changed) {
      changed = false;
      for (const BinateRow& r : p.rows) {
        if (row_satisfied(r, assigned, value)) continue;
        Bitset free_pos = r.pos;
        free_pos.subtract(assigned);
        Bitset free_neg = r.neg;
        free_neg.subtract(assigned);
        const std::size_t nfree = free_pos.count() + free_neg.count();
        if (nfree == 0) return;
        if (nfree == 1) {
          if (free_pos.any()) {
            const std::size_t c = free_pos.first();
            assigned.set(c);
            value.set(c);
            cost += column_weight(p, c);
            if (cost >= best_cost) return;
          } else {
            assigned.set(free_neg.first());
          }
          changed = true;
        }
      }
    }

    const BinateRow* pivot = nullptr;
    std::size_t pivot_free = std::numeric_limits<std::size_t>::max();
    for (const BinateRow& r : p.rows) {
      if (row_satisfied(r, assigned, value)) continue;
      Bitset free_pos = r.pos;
      free_pos.subtract(assigned);
      Bitset free_neg = r.neg;
      free_neg.subtract(assigned);
      const std::size_t nfree = free_pos.count() + free_neg.count();
      if (nfree < pivot_free) {
        pivot_free = nfree;
        pivot = &r;
      }
    }
    if (pivot == nullptr) {
      found = true;
      best_cost = cost;
      best_columns.clear();
      Bitset sel = value;
      sel &= assigned;
      sel.for_each([&](std::size_t c) { best_columns.push_back(c); });
      return;
    }

    if (cost + lower_bound(assigned, value) >= best_cost) return;

    Bitset free_neg = pivot->neg;
    free_neg.subtract(assigned);
    std::size_t var;
    if (free_neg.any())
      var = free_neg.first();
    else {
      Bitset free_pos = pivot->pos;
      free_pos.subtract(assigned);
      assert(free_pos.any());
      var = free_pos.first();
    }

    {
      Bitset a = assigned, v = value;
      a.set(var);
      v.reset(var);
      solve(std::move(a), std::move(v), cost);
    }
    {
      Bitset a = assigned, v = value;
      a.set(var);
      v.set(var);
      solve(std::move(a), std::move(v), cost + column_weight(p, var));
    }
  }
};

}  // namespace seedengine

namespace {

struct CaseResult {
  std::string name;
  double wall_seconds = 0;
  bool truncated = false;
  std::uint64_t nodes = 0;
  std::uint64_t seed_nodes = 0;
  std::uint64_t components = 0;
  std::uint64_t propagations = 0;
  int cost = 0;
  double seed_wall = 0;  // printed, not guarded (it is the old engine)
};

// The full 2^n - 2-column binate table of a plain n-symbol universe: all
// uniqueness dichotomies, seven-way symmetric cuts, no unit rows — the
// shape both engines must actually search.
BinateCoverProblem plain_table(int n) {
  ConstraintSet cs;
  for (int i = 0; i < n; ++i) cs.symbols().intern("s" + std::to_string(i));
  return build_binate_table(cs).problem;
}

// The paper's Figure 1 table (EXPERIMENTS.md): the root reductions alone
// solve it, so `nodes` measures the before/after of the reduction pass.
BinateCoverProblem figure1_table() {
  const ConstraintSet cs = parse_constraints(R"(
    face a b
    dominance b c
    disjunctive b a c
  )");
  return build_binate_table(cs).problem;
}

// Random weighted binate instance: pure-positive cover rows over `cols`
// columns plus implication pairs (select a => select b) that give the
// table its binate character. Deterministic via the fixed seed.
BinateCoverProblem random_binate(std::uint64_t seed, std::size_t cols,
                                 std::size_t cover_rows,
                                 std::size_t implications) {
  Rng rng(seed);
  BinateCoverProblem p;
  p.num_columns = cols;
  for (std::size_t c = 0; c < cols; ++c)
    p.weights.push_back(1 + static_cast<int>(rng.next_below(4)));
  for (std::size_t r = 0; r < cover_rows; ++r) {
    const std::size_t width = 3 + rng.next_below(3);
    std::vector<std::size_t> pos;
    for (std::size_t k = 0; k < width; ++k) {
      const std::size_t c = rng.next_below(cols);
      if (std::find(pos.begin(), pos.end(), c) == pos.end()) pos.push_back(c);
    }
    p.add_row(pos, {});
  }
  for (std::size_t i = 0; i < implications; ++i) {
    const std::size_t a = rng.next_below(cols);
    const std::size_t b = rng.next_below(cols);
    if (a != b) p.add_row({b}, {a});  // a selected => b selected
  }
  return p;
}

// Several independent random blocks glued into one problem: exercises the
// component decomposition (the seed engine sees one monolithic search).
BinateCoverProblem block_diagonal(std::uint64_t seed, int blocks,
                                  std::size_t block_cols) {
  Rng rng(seed);
  BinateCoverProblem p;
  p.num_columns = static_cast<std::size_t>(blocks) * block_cols;
  for (std::size_t c = 0; c < p.num_columns; ++c)
    p.weights.push_back(1 + static_cast<int>(rng.next_below(3)));
  for (int b = 0; b < blocks; ++b) {
    const std::size_t base = static_cast<std::size_t>(b) * block_cols;
    const std::size_t nrows = block_cols + block_cols / 2;
    for (std::size_t r = 0; r < nrows; ++r) {
      const std::size_t width = 2 + rng.next_below(3);
      std::vector<std::size_t> pos;
      for (std::size_t k = 0; k < width; ++k) {
        const std::size_t c = base + rng.next_below(block_cols);
        if (std::find(pos.begin(), pos.end(), c) == pos.end())
          pos.push_back(c);
      }
      p.add_row(pos, {});
    }
    for (std::size_t i = 0; i < block_cols / 3; ++i) {
      const std::size_t a = base + rng.next_below(block_cols);
      const std::size_t b2 = base + rng.next_below(block_cols);
      if (a != b2) p.add_row({b2}, {a});
    }
  }
  return p;
}

CaseResult run_case(const std::string& name, const BinateCoverProblem& p,
                    int reps) {
  CaseResult out;
  out.name = name;
  out.wall_seconds = 1e30;
  BinateCoverOptions opts;  // default per-component node budget
  for (int r = 0; r < reps; ++r) {
    Timer t;
    const BinateCoverSolution sol = solve_binate_cover(p, opts);
    const double secs = t.elapsed_seconds();
    if (secs < out.wall_seconds) out.wall_seconds = secs;
    out.truncated = sol.truncated;
    out.nodes = sol.nodes_explored;
    out.components = sol.components;
    out.propagations = sol.propagations;
    out.cost = sol.feasible ? sol.cost : -1;
  }
  out.seed_wall = 1e30;
  for (int r = 0; r < reps; ++r) {
    seedengine::Search seed(p, BinateCoverOptions{}.max_nodes);
    Timer t;
    seed.solve(Bitset(p.num_columns), Bitset(p.num_columns), 0);
    const double secs = t.elapsed_seconds();
    if (secs < out.seed_wall) out.seed_wall = secs;
    out.seed_nodes = seed.nodes;
    // Both engines are exact: the minimum cost must agree.
    if (seed.found && !out.truncated && out.cost >= 0 &&
        seed.best_cost != out.cost) {
      std::fprintf(stderr, "FATAL %s: cost mismatch new=%d seed=%d\n",
                   name.c_str(), out.cost, seed.best_cost);
      std::exit(1);
    }
  }
  return out;
}

void write_json(std::FILE* f, const std::vector<CaseResult>& cases) {
  std::fprintf(f, "{\n  \"schema\": \"encodesat-bench-covering-v1\",\n");
  std::fprintf(f, "  \"cases\": [\n");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"wall_seconds\": %.6f, "
                 "\"truncated\": %s, "
                 "\"counters\": {\"nodes\": %llu, \"seed_nodes\": %llu, "
                 "\"components\": %llu, \"propagations\": %llu, "
                 "\"cost\": %d}}%s\n",
                 c.name.c_str(), c.wall_seconds,
                 c.truncated ? "true" : "false",
                 static_cast<unsigned long long>(c.nodes),
                 static_cast<unsigned long long>(c.seed_nodes),
                 static_cast<unsigned long long>(c.components),
                 static_cast<unsigned long long>(c.propagations), c.cost,
                 i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  const char* out_path = nullptr;
  double check_reduction = 0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--reps") && i + 1 < argc)
      reps = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--quick"))
      reps = 1;
    else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
      out_path = argv[++i];
    else if (!std::strcmp(argv[i], "--check-reduction") && i + 1 < argc)
      check_reduction = std::atof(argv[++i]);
    else {
      std::fprintf(
          stderr,
          "usage: %s [--reps N] [--quick] [--out FILE] "
          "[--check-reduction X]\n",
          argv[0]);
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  std::vector<CaseResult> cases;
  cases.push_back(run_case("figure1", figure1_table(), reps));
  cases.push_back(run_case("table_n6", plain_table(6), reps));
  cases.push_back(
      run_case("random_c60r70", random_binate(41, 60, 70, 20), reps));
  cases.push_back(
      run_case("blocks_4x16", block_diagonal(97, 4, 16), reps));

  std::printf("%-16s %10s %12s %12s %6s %6s %10s\n", "case", "wall_s",
              "nodes", "seed_nodes", "ratio", "comps", "seed_wall");
  double best_ratio = 0;
  for (const CaseResult& c : cases) {
    const double ratio =
        static_cast<double>(c.seed_nodes) /
        static_cast<double>(c.nodes ? c.nodes : 1);
    best_ratio = std::max(best_ratio, ratio);
    std::printf("%-16s %10.6f %12llu %12llu %5.1fx %6llu %10.6f\n",
                c.name.c_str(), c.wall_seconds,
                static_cast<unsigned long long>(c.nodes),
                static_cast<unsigned long long>(c.seed_nodes), ratio,
                static_cast<unsigned long long>(c.components), c.seed_wall);
  }
  std::fprintf(stderr, "best node reduction: %.1fx over the seed engine\n",
               best_ratio);

  if (out_path) {
    std::FILE* f = std::fopen(out_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
    write_json(f, cases);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", out_path);
  }
  if (check_reduction > 0 && best_ratio < check_reduction) {
    std::fprintf(stderr,
                 "FAIL: best node reduction %.2fx below the %.1fx floor\n",
                 best_ratio, check_reduction);
    return 1;
  }
  return 0;
}
