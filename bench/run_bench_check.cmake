# Helper for the bench_check test/target (see CMakeLists.txt here): runs
# bench_primes in quick mode, then compare_bench.py against the committed
# baseline. Expects BENCH_PRIMES, PYTHON, COMPARE, BASELINE, OUT_JSON.
execute_process(
  COMMAND ${BENCH_PRIMES} --quick --reps 2 --out ${OUT_JSON}
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_primes exited with ${bench_rc}")
endif()
execute_process(
  COMMAND ${PYTHON} ${COMPARE} ${BASELINE} ${OUT_JSON}
  RESULT_VARIABLE compare_rc)
if(NOT compare_rc EQUAL 0)
  message(FATAL_ERROR "compare_bench.py reported a regression (rc=${compare_rc})")
endif()
