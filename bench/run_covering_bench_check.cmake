# Helper for the covering_bench_check test/target (see CMakeLists.txt
# here): runs bench_covering — which itself fails unless some case shows
# at least a 2x node reduction over the embedded seed engine — then
# compare_bench.py against the committed baseline (wall-time budget + the
# deterministic nodes / seed_nodes / components / propagations / cost
# counters). Expects BENCH_COVERING, PYTHON, COMPARE, BASELINE, OUT_JSON.
execute_process(
  COMMAND ${BENCH_COVERING} --reps 2 --check-reduction 2 --out ${OUT_JSON}
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_covering exited with ${bench_rc}")
endif()
execute_process(
  COMMAND ${PYTHON} ${COMPARE} ${BASELINE} ${OUT_JSON}
  RESULT_VARIABLE compare_rc)
if(NOT compare_rc EQUAL 0)
  message(FATAL_ERROR "compare_bench.py reported a regression (rc=${compare_rc})")
endif()
