// Regenerates Table 3: multi-level heuristic minimum-code-length input
// encoding with encoding don't-cares — our heuristic (ENC) versus the
// simulated-annealing baseline (the MIS-MV approach), literal count as the
// cost function. The paper's shape: comparable literal counts (ENC within a
// few percent either way, better on the large machines the annealer cannot
// afford to explore) at one to two orders of magnitude less time.
#include <algorithm>
#include <cstdio>
#include <string>

#include "baseline/annealing.h"
#include "core/bounded.h"
#include "core/cost.h"
#include "fsm/constraints_gen.h"
#include "fsm/mcnc_like.h"
#include "util/timer.h"

using namespace encodesat;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  // The 12 machines of the paper's Table 3 ('†' rows are its larger ones).
  const char* names[] = {"bbsse", "cse",  "dk16",    "dk512",
                         "donfile", "kirkman", "master", "s1",
                         "sand",  "tbk",  "viterbi", "vmecont"};
  const char* big[] = {"sand", "tbk", "viterbi", "vmecont"};

  std::printf("Table 3: multi-level heuristic minimum code length input "
              "encoding (don't-care faces, literal cost)\n");
  std::printf("%-9s %7s | %8s %8s | %9s %9s %7s\n", "Name", "#States",
              "SA lit", "ENC lit", "SA t(s)", "ENC t(s)", "t-ratio");
  double total_ratio = 0;
  int rows = 0;
  for (const char* name : names) {
    const Fsm fsm = make_mcnc_like(benchmark_spec(name));
    ConstraintGenOptions gopts;
    gopts.face_dontcares = true;
    const ConstraintSet cs = generate_input_constraints(fsm, gopts);
    const int bits = minimum_code_length(fsm.num_states());

    bool is_big = false;
    for (const char* b : big)
      if (std::string(b) == name) is_big = true;

    AnnealOptions aopts;
    aopts.cost = CostKind::kLiterals;
    // The paper runs 10 swaps per temperature point, but must fall back to
    // 4 on the large machines; we mirror that. The schedule length grows
    // with the machine so the annealer gets a realistic (slow) run.
    aopts.moves_per_temperature = is_big ? 4 : 10;
    // Full mode gives the annealer a convergent (slow) schedule — the
    // paper's comparison point; quick mode keeps it snappy.
    aopts.temperature_points =
        quick ? 12
              : std::min(60 + 12 * static_cast<int>(fsm.num_states()), 150);
    Timer t;
    const auto sa = anneal_encode(cs, bits, aopts);
    const double sa_time = t.elapsed_seconds();

    BoundedEncodeOptions bopts;
    bopts.cost = CostKind::kLiterals;
    bopts.max_selection_evals = quick ? 40 : 120;
    t.reset();
    const auto enc = bounded_encode(cs, bits, bopts);
    const double enc_time = t.elapsed_seconds();

    const double ratio = sa_time / (enc_time > 1e-9 ? enc_time : 1e-9);
    total_ratio += ratio;
    ++rows;
    std::printf("%-9s %7u | %8d %8d | %9.2f %9.2f %6.1fx%s\n", name,
                fsm.num_states(), sa.cost.literals, enc.cost.literals,
                sa_time, enc_time, ratio, is_big ? "  (SA limited)" : "");
  }
  std::printf("---\nmean SA/ENC time ratio: %.1fx\n", total_ratio / rows);
  std::printf("paper: ENC within ~5%% of SA on literals (ahead on the large "
              "machines) at >=10x less time.\n");
  return 0;
}
