// Repeat-workload benchmark for the solve service (src/service/broker.h):
// quantifies what the shared cache + single-flight coalescing buy a warm
// `encodesat serve` over cold per-request solving.
//
//   bench_service [--reps N] [--out FILE] [--check-speedup X]
//
// Workload: 4 concurrent clients, each submitting 8 requests that are
// symbol-rotated renderings of one canonical instance (the chain-face
// shape from bench_primes' solve-cache cases) — the recurring-instance
// pattern the service is built for. Two measurements:
//
//  * serve_warm — all 32 requests through one Broker with a shared
//    SolveCache: one pipeline run pays the solve, everything else is a
//    canonicalize+lookup or a coalesced attach. The exact hit/coalesce
//    split depends on scheduling, so the JSON guards `cache_misses` and
//    the combined `cache_reuse = hits + coalesced` (deterministic), never
//    the split.
//  * solve_cold — the same 32 requests as independent uncached solves on
//    the same number of threads: the per-request cost a client pays
//    without the service.
//
// Schema (encodesat-bench-service-v2) is compare_bench.py-compatible:
// wall-time regressions against bench/BENCH_service.json fail the
// service_bench_check ctest, counter drift is a hard determinism failure.
// v2 adds the warm case's `solve.work` histogram bucket counts: every
// reuse request observes zero pipeline work and the one real solve
// observes the instance's work units, so the bucket profile is exact and
// scheduling-invariant (the per-stage histograms are not — a hit's stage
// tree differs from a coalesced follower's — and duration histograms are
// wall clock; both stay unguarded). --check-speedup X additionally exits
// nonzero when warm is not at least X times faster than cold — the
// service's reason to exist, pinned.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/canonical.h"
#include "cache/solve_cache.h"
#include "core/solver.h"
#include "obs/counters.h"
#include "obs/histogram.h"
#include "service/broker.h"
#include "service/server.h"
#include "util/timer.h"

using namespace encodesat;

namespace {

constexpr int kClients = 4;
constexpr int kPerClient = 8;

struct CaseResult {
  std::string name;
  double wall_seconds = 0;
  bool truncated = false;
  std::uint64_t requests = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_reuse = 0;  // hits + coalesced, scheduling-invariant
  // Connection-lifecycle counters for the churn cases: every connect is
  // accepted and every disconnect reaped, so both are deterministic.
  bool has_conns = false;
  std::uint64_t conns_accepted = 0;
  std::uint64_t conns_reaped = 0;
  // solve.work bucket profile as (boundary, count), scheduling-invariant
  // for the warm workload; empty for the cold case.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> work_buckets;
};

// The chain-face instance from bench_primes' solve-cache cases: exactly
// solvable, with enough pipeline work that a full solve dwarfs a
// canonicalize+lookup round trip.
ConstraintSet chain_faces(int n) {
  ConstraintSet cs;
  for (int i = 0; i < n; ++i) cs.symbols().intern("s" + std::to_string(i));
  auto face = [&](std::initializer_list<int> m) {
    std::vector<std::uint32_t> ids;
    for (int id : m) ids.push_back(static_cast<std::uint32_t>(id));
    cs.add_face_ids(std::move(ids));
  };
  for (int i = 0; i + 2 < n; ++i) face({i, i + 1, i + 2});
  for (int i = 0; i + 7 < n; i += 2) face({i, i + 7});
  for (int i = 0; i + 11 < n; i += 3) face({i, i + 11});
  return cs;
}

// One rendering per request: request k is the base instance with symbols
// rotated by 3k — the same canonical instance every time.
std::vector<ConstraintSet> renderings(const ConstraintSet& base, int count) {
  const std::uint32_t n = base.num_symbols();
  std::vector<ConstraintSet> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    std::vector<std::uint32_t> perm(n);
    for (std::uint32_t i = 0; i < n; ++i)
      perm[i] = (i + 3 * static_cast<std::uint32_t>(k)) % n;
    out.push_back(apply_symbol_permutation(base, perm));
  }
  return out;
}

CaseResult run_warm(const std::vector<ConstraintSet>& reqs, int reps) {
  CaseResult out;
  out.name = "serve_warm32_chain10";
  out.requests = reqs.size();
  out.wall_seconds = 1e30;
  for (int r = 0; r < reps; ++r) {
    SolveCache cache;
    MetricsRegistry metrics;
    BrokerConfig cfg;
    cfg.workers = kClients;
    cfg.max_queue = 0;
    cfg.cache = &cache;
    cfg.metrics = &metrics;
    std::mutex mu;
    std::condition_variable cv;
    std::size_t done = 0;
    bool truncated = false;
    Timer t;
    {
      Broker broker(cfg);
      std::vector<std::thread> clients;
      for (int c = 0; c < kClients; ++c)
        clients.emplace_back([&, c] {
          for (int i = 0; i < kPerClient; ++i) {
            SolveRequest req;
            req.constraints = reqs[static_cast<std::size_t>(
                c * kPerClient + i)];
            broker.submit(std::move(req), [&](SolveResponse resp) {
              std::lock_guard<std::mutex> lock(mu);
              truncated = truncated || resp.result.truncated;
              if (++done == reqs.size()) cv.notify_one();
            });
          }
        });
      for (std::thread& th : clients) th.join();
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done == reqs.size(); });
      broker.drain(DrainMode::kFinishQueued);
      const double secs = t.elapsed_seconds();
      if (secs < out.wall_seconds) out.wall_seconds = secs;
      out.truncated = truncated;
      out.cache_misses = cache.stats().misses;
      out.cache_reuse =
          cache.stats().hits + broker.single_flight().stats().coalesced;
      out.work_buckets.clear();
      const std::vector<std::uint64_t>& bounds =
          histogram_buckets::boundaries();
      for (const auto& [bucket, n] :
           metrics.histogram("solve.work")->nonzero_buckets())
        out.work_buckets.emplace_back(
            bucket < bounds.size() ? bounds[bucket] : ~0ull, n);
    }
  }
  return out;
}

CaseResult run_cold(const std::vector<ConstraintSet>& reqs, int reps) {
  CaseResult out;
  out.name = "solve_cold32_chain10";
  out.requests = reqs.size();
  out.wall_seconds = 1e30;
  for (int r = 0; r < reps; ++r) {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> truncated{false};
    Timer t;
    std::vector<std::thread> workers;
    for (int c = 0; c < kClients; ++c)
      workers.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= reqs.size()) return;
          const SolveResult res = Solver(reqs[i]).encode({});
          if (res.truncated) truncated.store(true);
        }
      });
    for (std::thread& th : workers) th.join();
    const double secs = t.elapsed_seconds();
    if (secs < out.wall_seconds) out.wall_seconds = secs;
    out.truncated = truncated.load();
  }
  return out;
}

// ---------------------------------------------- socket churn workload --

// The chain-face instance as wire text, symbols rotated by `rot` — the
// same canonical instance as chain_faces(n) under every rotation, so the
// whole churn workload coalesces onto one real solve (cache_misses == 1,
// deterministic). Newlines are pre-escaped for embedding in a JSON
// request line.
std::string chain_faces_wire(int n, int rot) {
  const auto sym = [&](int i) {
    return " s" + std::to_string((i + rot) % n);
  };
  std::string out;
  const auto face = [&](std::initializer_list<int> m) {
    out += "face";
    for (int id : m) out += sym(id);
    out += "\\n";
  };
  for (int i = 0; i + 2 < n; ++i) face({i, i + 1, i + 2});
  for (int i = 0; i + 7 < n; i += 2) face({i, i + 7});
  for (int i = 0; i + 11 < n; i += 3) face({i, i + 11});
  return out;
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool read_ok_line(int fd) {
  std::string line;
  char c;
  while (::read(fd, &c, 1) == 1) {
    if (c == '\n') return line.find("\"status\":\"ok\"") != std::string::npos;
    line.push_back(c);
  }
  return false;
}

// 8 clients, each opening kConnsPerClient short-lived connections that
// send kReqsPerConn pipelined requests and disconnect — the
// connect/solve/disconnect churn the reaping event loop exists for. The
// Unix and TCP variants run the identical workload, so their relative
// wall time is the transport tax (guarded by --check-tcp-parity).
CaseResult run_churn(int reps, bool tcp) {
  constexpr int kChurnClients = 8;
  constexpr int kConnsPerClient = 4;
  constexpr int kReqsPerConn = 2;
  CaseResult out;
  out.name = tcp ? "churn_tcp8_chain10" : "churn_unix8_chain10";
  out.requests = kChurnClients * kConnsPerClient * kReqsPerConn;
  out.has_conns = true;
  out.wall_seconds = 1e30;
  char sock_path[128];
  std::snprintf(sock_path, sizeof sock_path,
                "/tmp/encodesat_bench_churn_%d.sock",
                static_cast<int>(::getpid()));
  for (int r = 0; r < reps; ++r) {
    SolveCache cache;
    MetricsRegistry metrics;
    ServerConfig cfg;
    cfg.broker.workers = 4;
    cfg.broker.max_queue = 0;
    cfg.broker.cache = &cache;
    cfg.broker.metrics = &metrics;
    cfg.metrics = &metrics;
    Server server(cfg);
    std::thread serving([&] {
      const int rc = tcp ? server.run_tcp("127.0.0.1:0")
                         : server.run_unix_socket(sock_path);
      if (rc != 0)
        std::fprintf(stderr, "churn server failed: %s\n",
                     server.last_error().c_str());
    });
    // Wait until the listener answers before the clock starts.
    int port = 0;
    if (tcp)
      while ((port = server.bound_port()) == 0) std::this_thread::yield();
    for (;;) {
      const int probe = tcp ? connect_tcp(port) : connect_unix(sock_path);
      if (probe >= 0) {
        ::close(probe);
        break;
      }
      std::this_thread::yield();
    }
    while (server.live_connections() != 0) std::this_thread::yield();

    std::atomic<int> ok{0};
    Timer t;
    std::vector<std::thread> clients;
    for (int c = 0; c < kChurnClients; ++c)
      clients.emplace_back([&, c] {
        for (int conn = 0; conn < kConnsPerClient; ++conn) {
          const int fd = tcp ? connect_tcp(port) : connect_unix(sock_path);
          if (fd < 0) return;
          std::string batch;
          for (int i = 0; i < kReqsPerConn; ++i) {
            const int rot = 3 * (c * kConnsPerClient * kReqsPerConn +
                                 conn * kReqsPerConn + i);
            batch += "{\"id\":\"c" + std::to_string(c) +
                     "\",\"constraints\":\"" + chain_faces_wire(10, rot) +
                     "\"}\n";
          }
          if (::write(fd, batch.data(), batch.size()) ==
              static_cast<ssize_t>(batch.size()))
            for (int i = 0; i < kReqsPerConn; ++i)
              if (read_ok_line(fd)) ok.fetch_add(1);
          ::close(fd);
        }
      });
    for (std::thread& th : clients) th.join();
    // Wait for the reaps so accepted == reaped deterministically.
    while (server.live_connections() != 0) std::this_thread::yield();
    const double secs = t.elapsed_seconds();
    server.request_drain();
    serving.join();
    if (ok.load() != static_cast<int>(out.requests)) {
      std::fprintf(stderr, "churn: only %d/%llu requests answered ok\n",
                   ok.load(),
                   static_cast<unsigned long long>(out.requests));
      out.truncated = true;
    }
    if (secs < out.wall_seconds) out.wall_seconds = secs;
    out.cache_misses = cache.stats().misses;
    out.cache_reuse =
        cache.stats().hits + server.broker().single_flight().stats().coalesced;
    out.conns_accepted =
        metrics.counter("service.conn.accepted", false)->value();
    out.conns_reaped = metrics.counter("service.conn.reaped", false)->value();
    out.work_buckets.clear();
    const std::vector<std::uint64_t>& bounds =
        histogram_buckets::boundaries();
    for (const auto& [bucket, n] :
         metrics.histogram("solve.work")->nonzero_buckets())
      out.work_buckets.emplace_back(
          bucket < bounds.size() ? bounds[bucket] : ~0ull, n);
  }
  return out;
}

void write_json(std::FILE* f, const std::vector<CaseResult>& cases) {
  std::fprintf(f, "{\n  \"schema\": \"encodesat-bench-service-v2\",\n");
  std::fprintf(f, "  \"cases\": [\n");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"wall_seconds\": %.6f, "
                 "\"truncated\": %s, "
                 "\"counters\": {\"requests\": %llu, "
                 "\"cache_misses\": %llu, \"cache_reuse\": %llu",
                 c.name.c_str(), c.wall_seconds,
                 c.truncated ? "true" : "false",
                 static_cast<unsigned long long>(c.requests),
                 static_cast<unsigned long long>(c.cache_misses),
                 static_cast<unsigned long long>(c.cache_reuse));
    // Inside "counters" so compare_bench.py's determinism guard covers
    // them: a missed reap shows up as counter drift, a hard failure.
    if (c.has_conns)
      std::fprintf(f, ", \"conns_accepted\": %llu, \"conns_reaped\": %llu",
                   static_cast<unsigned long long>(c.conns_accepted),
                   static_cast<unsigned long long>(c.conns_reaped));
    std::fprintf(f, "}");
    if (!c.work_buckets.empty()) {
      std::fprintf(f, ", \"histograms\": {\"solve.work\": {\"buckets\": {");
      for (std::size_t b = 0; b < c.work_buckets.size(); ++b)
        std::fprintf(f, "%s\"%llu\": %llu", b ? ", " : "",
                     static_cast<unsigned long long>(c.work_buckets[b].first),
                     static_cast<unsigned long long>(
                         c.work_buckets[b].second));
      std::fprintf(f, "}}}");
    }
    std::fprintf(f, "}%s\n", i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  const char* out_path = nullptr;
  double check_speedup = 0;
  double check_tcp_parity = 0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--reps") && i + 1 < argc)
      reps = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
      out_path = argv[++i];
    else if (!std::strcmp(argv[i], "--check-speedup") && i + 1 < argc)
      check_speedup = std::atof(argv[++i]);
    else if (!std::strcmp(argv[i], "--check-tcp-parity") && i + 1 < argc)
      check_tcp_parity = std::atof(argv[++i]);
    else {
      std::fprintf(stderr,
                   "usage: %s [--reps N] [--out FILE] [--check-speedup X] "
                   "[--check-tcp-parity X]\n",
                   argv[0]);
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  const ConstraintSet base = chain_faces(10);
  const std::vector<ConstraintSet> reqs =
      renderings(base, kClients * kPerClient);

  std::vector<CaseResult> cases;
  cases.push_back(run_cold(reqs, reps));
  cases.push_back(run_warm(reqs, reps));
  cases.push_back(run_churn(reps, /*tcp=*/false));
  cases.push_back(run_churn(reps, /*tcp=*/true));
  const CaseResult& cold = cases[0];
  const CaseResult& warm = cases[1];
  const CaseResult& churn_unix = cases[2];
  const CaseResult& churn_tcp = cases[3];

  std::printf("%-24s %12s %9s %12s %12s %8s %8s\n", "case", "wall_s",
              "requests", "cache_miss", "cache_reuse", "accepted", "reaped");
  for (const CaseResult& c : cases)
    std::printf("%-24s %12.6f %9llu %12llu %12llu %8llu %8llu\n",
                c.name.c_str(), c.wall_seconds,
                static_cast<unsigned long long>(c.requests),
                static_cast<unsigned long long>(c.cache_misses),
                static_cast<unsigned long long>(c.cache_reuse),
                static_cast<unsigned long long>(c.conns_accepted),
                static_cast<unsigned long long>(c.conns_reaped));
  const double speedup =
      warm.wall_seconds > 0 ? cold.wall_seconds / warm.wall_seconds : 0;
  std::fprintf(stderr, "serve speedup: %.1fx warm over cold\n", speedup);
  const double tcp_parity = churn_tcp.wall_seconds > 0
                                ? churn_unix.wall_seconds /
                                      churn_tcp.wall_seconds
                                : 0;
  std::fprintf(stderr,
               "tcp churn parity: %.2fx of the unix-socket throughput\n",
               tcp_parity);

  if (out_path) {
    std::FILE* f = std::fopen(out_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
    write_json(f, cases);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", out_path);
  }
  if (check_speedup > 0 && speedup < check_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below the %.1fx floor\n",
                 speedup, check_speedup);
    return 1;
  }
  if (check_tcp_parity > 0 && tcp_parity < check_tcp_parity) {
    std::fprintf(stderr,
                 "FAIL: tcp churn at %.2fx of unix throughput, below the "
                 "%.2fx floor\n",
                 tcp_parity, check_tcp_parity);
    return 1;
  }
  for (const CaseResult& c : cases)
    if (c.truncated && c.has_conns) {
      std::fprintf(stderr, "FAIL: churn case %s lost responses\n",
                   c.name.c_str());
      return 1;
    }
  return 0;
}
