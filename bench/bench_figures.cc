// Regenerates every worked example / figure of the paper:
//   Figure 1  — binate covering table for (a,b), b>c, b = a OR c
//   Section 5.1 example — cs/ps 2-CNF -> SOP (with erratum)
//   Figure 3  — input encoding walkthrough
//   Figure 4  — feasibility counterexample vs the local check of [9]
//   Figure 8  — exact mixed input/output encoding
//   Section 7 / Figure 9 — cost-function evaluation at 4 and 3 bits
//   Section 8.1 example — encoding don't-cares change the minimum length
//   Section 8.3 example — non-face constraints
#include <cstdio>

#include "core/binate_table.h"
#include "core/bounded.h"
#include "core/chains.h"
#include "core/cost.h"
#include "core/encoder.h"
#include "core/solver.h"
#include "core/extensions.h"
#include "core/local_check.h"
#include "core/primes.h"
#include "core/verify.h"

using namespace encodesat;

namespace {

void figure1() {
  std::printf("=== Figure 1: satisfaction of constraints as binate covering ===\n");
  const ConstraintSet cs = parse_constraints(R"(
    face a b
    dominance b c
    disjunctive b a c
  )");
  const BinateTable table = build_binate_table(cs);
  std::printf("columns (encoding columns over a,b,c):");
  for (std::size_t c = 0; c < table.patterns.size(); ++c) {
    std::printf("  c%zu=", c + 1);
    for (std::uint32_t s = 0; s < 3; ++s)
      std::printf("%llu",
                  static_cast<unsigned long long>((table.patterns[c] >> s) & 1));
  }
  std::printf("\nrows: %zu unate (dichotomy coverage) + %zu negative "
              "(output-violating columns)\n",
              table.num_unate_rows, table.num_negative_rows);
  const auto res = binate_table_encode(cs);
  std::printf("minimum cover: %d columns -> %s\n", res.encoding.bits,
              res.encoding.to_string(cs.symbols()).c_str());
  std::printf("paper: minimum two encoding columns satisfy all constraints\n\n");
}

void section51() {
  std::printf("=== Section 5.1: prime generation via cs/ps ===\n");
  std::printf("incompatibilities: (a+b)(a+c)(b+c)(c+d)(d+e)\n");
  std::vector<Bitset> inc(5, Bitset(5));
  auto edge = [&](std::size_t i, std::size_t j) {
    inc[i].set(j);
    inc[j].set(i);
  };
  edge(0, 1); edge(0, 2); edge(1, 2); edge(2, 3); edge(3, 4);
  bool trunc = false;
  const auto sop = two_cnf_to_minimal_sop(inc, 1000, &trunc);
  const char* names = "abcde";
  std::printf("irredundant SOP terms (deletion sets): ");
  for (const auto& t : sop) {
    t.for_each([&](std::size_t v) { std::printf("%c", names[v]); });
    std::printf(" ");
  }
  std::printf("\nmaximal compatibles: ");
  for (const auto& t : sop) {
    std::printf("{");
    for (std::size_t v = 0; v < 5; ++v)
      if (!t.test(v)) std::printf("%c", names[v]);
    std::printf("} ");
  }
  std::printf("\npaper lists acd+ace+bcd+bce -> {b,e},{b,d},{a,e},{a,d}; the\n"
              "term abd (compatible {c,e}) is missing there — see EXPERIMENTS.md"
              " errata.\n\n");
}

void figure3() {
  std::printf("=== Figure 3: input encoding example ===\n");
  const ConstraintSet cs = parse_constraints(R"(
    face s0 s2 s4
    face s0 s1 s4
    face s1 s2 s3
    face s1 s3 s4
  )");
  const auto init = generate_initial_dichotomies(cs);
  std::printf("initial encoding-dichotomies: %zu (paper, with s1 pinned "
              "to the right block: 9)\n",
              init.size());
  std::vector<Dichotomy> ds;
  for (const auto& i : init) ds.push_back(i.dichotomy);
  dedupe_dichotomies(ds);
  const auto pg = generate_prime_dichotomies(ds);
  std::printf("prime encoding-dichotomies: %zu\n", pg.primes.size());
  const SolveResult res = Solver(cs).encode();
  std::printf("minimum cover: %d primes -> %s\n", res.encoding.bits,
              res.encoding.to_string(cs.symbols()).c_str());
  std::printf("paper: minimum cover uses 4 primes\n\n");
}

void figure4() {
  std::printf("=== Figure 4: feasibility check with input+output constraints ===\n");
  const ConstraintSet cs = parse_constraints(R"(
    face s1 s5
    face s2 s5
    face s4 s5
    symbol s0
    symbol s3
    dominance s0 s1
    dominance s0 s2
    dominance s0 s3
    dominance s0 s5
    dominance s1 s3
    dominance s2 s3
    dominance s4 s5
    dominance s5 s2
    dominance s5 s3
    disjunctive s0 s1 s2
  )");
  const FeasibilityResult res = Solver(cs).feasibility();
  std::printf("initial encoding-dichotomies: %zu (paper: 26)\n",
              res.initial.size());
  std::printf("valid maximally raised dichotomies: %zu (paper: 6)\n",
              res.raised.size());
  std::printf("check_feasible: %s\n", res.feasible ? "FEASIBLE" : "INFEASIBLE");
  std::printf("uncovered initial dichotomies:\n");
  for (std::size_t i : res.uncovered)
    std::printf("  %s\n",
                res.initial[i].dichotomy.to_string(cs.symbols()).c_str());
  std::printf("local-consistency check in the spirit of [9]: %s\n",
              local_consistency_feasible(cs) ? "feasible (WRONG)"
                                             : "infeasible");
  std::printf("paper: the constraints are infeasible, yet [9]'s check "
              "accepts them; uncovered dichotomies are (s0; s1 s5) and "
              "(s1 s5; s0)\n\n");
}

void figure8() {
  std::printf("=== Figure 8: exact encoding with input+output constraints ===\n");
  const ConstraintSet cs = parse_constraints(R"(
    face s0 s1
    dominance s0 s1
    dominance s1 s2
    disjunctive s0 s1 s3
  )");
  const SolveResult res = Solver(cs).encode();
  std::printf("initial: %zu, raised: %zu, valid primes: %zu\n",
              res.num_initial, res.num_raised, res.num_valid_primes);
  std::printf("encoding (%d bits): %s\n", res.encoding.bits,
              res.encoding.to_string(cs.symbols()).c_str());
  const auto v = verify_encoding(res.encoding, cs);
  std::printf("verified: %s\n", v.empty() ? "yes" : v[0].detail.c_str());
  std::printf("paper: s0=11 s1=10 s2=00 s3=01 (any satisfying 2-bit "
              "assignment is equivalent)\n\n");
}

void section7() {
  std::printf("=== Section 7 / Figure 9: cost functions at fixed length ===\n");
  const ConstraintSet cs = parse_constraints(R"(
    face e f c
    face e d g
    face a b d
    face a g f d
  )");
  const SolveResult exact = Solver(cs).encode();
  std::printf("satisfying all constraints needs %d bits (paper: 4)\n",
              exact.encoding.bits);
  for (int bits = 4; bits >= 3; --bits) {
    BoundedEncodeOptions opts;
    opts.cost = CostKind::kLiterals;
    opts.max_selection_evals = 2000;
    const auto res = bounded_encode(cs, bits, opts);
    std::printf("%d-bit heuristic: %d/%zu faces violated, %d cubes, "
                "%d literals\n",
                bits, res.cost.violated_faces, cs.faces().size(),
                res.cost.cubes, res.cost.literals);
  }
  std::printf("paper's sample 3-bit encoding: 3 faces violated, 7 cubes, "
              "14 literals\n\n");
}

void section81() {
  std::printf("=== Section 8.1: input encoding don't-cares ===\n");
  struct Case {
    const char* label;
    const char* text;
  };
  const Case cases[] = {
      {"(a,b,[c,d],e) free",
       "face a b\nface a c\nface a d\nface a b [c d] e\nsymbol f"},
      {"don't-cares forced in",
       "face a b\nface a c\nface a d\nface a b c d e\nsymbol f"},
      {"don't-cares forced out",
       "face a b\nface a c\nface a d\nface a b e\nsymbol f"},
  };
  for (const auto& c : cases) {
    const SolveResult res = Solver(parse_constraints(c.text)).encode();
    std::printf("%-24s -> %d bits (%zu valid primes)\n", c.label,
                res.encoding.bits, res.num_valid_primes);
  }
  std::printf("paper: 3 primes suffice with don't-cares, 4 otherwise\n\n");
}

void section83() {
  std::printf("=== Section 8.3: non-face constraints ===\n");
  const ConstraintSet cs = parse_constraints(R"(
    face a b
    face b c d
    face a e
    face d f
    nonface a b e
  )");
  SolveOptions so;
  so.pipeline = SolveOptions::Pipeline::kExtensions;
  const SolveResult res = Solver(cs).encode(so);
  std::printf("encoding (%d bits): %s\n", res.encoding.bits,
              res.encoding.to_string(cs.symbols()).c_str());
  const auto v = verify_encoding(res.encoding, cs);
  std::printf("verified (incl. intruder in the (a,b,e) face): %s\n",
              v.empty() ? "yes" : v[0].detail.c_str());
  std::printf("paper witness: a=011 b=001 c=101 d=100 e=111 f=110 (3 bits)\n\n");
}

void section84() {
  std::printf("=== Section 8.4: chain constraints (the paper's open case) ===\n");
  ConstraintSet cs = parse_constraints("face b c\nface a b\nsymbol d");
  ChainConstraint chain;
  for (const char* s : {"d", "b", "c", "a"})
    chain.sequence.push_back(cs.symbols().at(s));
  const auto res = encode_with_chains(cs, {chain}, 2);
  std::printf("faces (b,c),(a,b) + chain (d-b-c-a), 2 bits: %s\n",
              res.status == ChainEncodeResult::Status::kEncoded
                  ? res.encoding.to_string(cs.symbols()).c_str()
                  : "no solution");
  std::printf("paper witness: a=00 b=10 c=11 d=01 (solved here by the "
              "enumerative baseline the paper predicts; an efficient "
              "dichotomy formulation remains open)\n\n");
}

}  // namespace

int main() {
  figure1();
  section51();
  figure3();
  figure4();
  figure8();
  section7();
  section81();
  section83();
  section84();
  return 0;
}
