#!/usr/bin/env python3
"""Compare a fresh bench run against its committed baseline.

Works for every harness emitting the encodesat-bench-* JSON shape
(bench_primes' encodesat-bench-primes-v2, bench_service's
encodesat-bench-service-v1, ...); the two files must carry the same
schema string as each other.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--max-regress PCT]

Checks, per case name present in BOTH files:

  * determinism guard — `work_units`, `folds`, `num_terms`, `truncated`
    and the v2 `counters` object (arena allocs/reuses, signature-prune
    hits, and — for the solve_cache_* repeat-workload cases — the solve
    cache's `cache_hits`/`cache_misses`) must match the baseline exactly.
    These are pure functions of the algorithm (no wall-clock dependence),
    so any drift means the fold changed behaviour — did more work,
    stopped reusing the free list, lost prune effectiveness, stopped
    recognising renamed duplicates — not just speed.  This is a hard
    failure regardless of timing.
  * histogram guard — the optional per-case `histograms` object
    (bench_service v2: the `solve.work` bucket profile of the warm
    workload) must match bucket for bucket: a count that moves to a
    different bucket means a request paid a different amount of pipeline
    work.  Hard failure, like the counters; wall-time histogram *sums*
    are never emitted here, so timing noise cannot trip it.
  * wall-time regression — `wall_seconds` may not exceed the baseline by
    more than --max-regress percent (default 20).  Cases whose baseline
    time is below MIN_SECONDS (0.05 s) are exempt: at microsecond scale
    the ratio is all noise.

Improvements are reported but never fail.  Exit status 0 = pass, 1 = any
failure, 2 = usage / schema error.

To refresh a committed baseline after an intentional change (see the
"Performance" section of docs/API.md):

    ./build/bench/bench_primes --reps 3 --out bench/BENCH_primes.json
    ./build/bench/bench_service --reps 3 --out bench/BENCH_service.json
"""

import json
import sys

MIN_SECONDS = 0.05
SCHEMA_PREFIX = "encodesat-bench-"


def load(path, want_schema=None):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"compare_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    schema = data.get("schema")
    if not isinstance(schema, str) or not schema.startswith(SCHEMA_PREFIX):
        print(f"compare_bench: {path}: schema {schema!r} is not an "
              f"{SCHEMA_PREFIX}* schema", file=sys.stderr)
        sys.exit(2)
    if want_schema is not None and schema != want_schema:
        print(f"compare_bench: {path}: schema {schema!r} != baseline's "
              f"{want_schema!r}", file=sys.stderr)
        sys.exit(2)
    return schema, {c["name"]: c for c in data.get("cases", [])}


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    max_regress = 20.0
    it = iter(argv[1:])
    for a in it:
        if a == "--max-regress":
            try:
                max_regress = float(next(it))
            except (StopIteration, ValueError):
                print("compare_bench: --max-regress needs a number", file=sys.stderr)
                return 2
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    schema, base = load(args[0])
    _, cur = load(args[1], want_schema=schema)
    shared = [n for n in base if n in cur]
    if not shared:
        print("compare_bench: no common case names between the two files",
              file=sys.stderr)
        return 2
    for name in cur:
        if name not in base:
            print(f"  note  {name}: new case, no baseline yet")

    failures = 0
    for name in shared:
        b, c = base[name], cur[name]
        for key in ("work_units", "folds", "num_terms", "truncated"):
            if b.get(key) != c.get(key):
                print(f"  FAIL  {name}: {key} {b.get(key)} -> {c.get(key)} "
                      "(determinism guard: algorithm output changed)")
                failures += 1
        bc, cc = b.get("counters", {}), c.get("counters", {})
        for key in sorted(set(bc) | set(cc)):
            if bc.get(key) != cc.get(key):
                print(f"  FAIL  {name}: counters.{key} {bc.get(key)} -> "
                      f"{cc.get(key)} (determinism guard: work profile "
                      "changed)")
                failures += 1
        bh, ch = b.get("histograms", {}), c.get("histograms", {})
        for hname in sorted(set(bh) | set(ch)):
            bb = bh.get(hname, {}).get("buckets", {})
            cb = ch.get(hname, {}).get("buckets", {})
            for le in sorted(set(bb) | set(cb), key=lambda s: int(s)):
                if bb.get(le) != cb.get(le):
                    print(f"  FAIL  {name}: histograms.{hname} bucket "
                          f"{le} {bb.get(le)} -> {cb.get(le)} "
                          "(determinism guard: work distribution changed)")
                    failures += 1
        bt, ct = b["wall_seconds"], c["wall_seconds"]
        if bt < MIN_SECONDS:
            print(f"  ok    {name}: baseline {bt:.6f}s below {MIN_SECONDS}s floor,"
                  " timing exempt")
            continue
        pct = (ct - bt) / bt * 100.0
        if pct > max_regress:
            print(f"  FAIL  {name}: wall {bt:.3f}s -> {ct:.3f}s "
                  f"(+{pct:.1f}% > {max_regress:.0f}% budget)")
            failures += 1
        else:
            word = "slower" if pct > 0 else "faster"
            print(f"  ok    {name}: wall {bt:.3f}s -> {ct:.3f}s "
                  f"({abs(pct):.1f}% {word})")

    if failures:
        print(f"compare_bench: {failures} failure(s)")
        return 1
    print(f"compare_bench: all {len(shared)} case(s) within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
