// Benchmark regression harness for the cs/ps SOP fold (Fig. 2) — the
// measured bottleneck of the exact pipeline (Table 1's planet/vmecont blow
// up here). Emits a stable JSON schema so compare_bench.py (and the CMake
// `bench_check` target) can fail the build on wall-time regressions against
// the committed BENCH_primes.json baseline.
//
//   bench_primes [--reps N] [--out FILE] [--quick]
//
// Schema (encodesat-bench-primes-v2): one record per case with the minimum
// wall time over N repetitions plus the deterministic fold metrics (work
// units, peak arena bytes, term count) that must not drift silently. v2
// adds a per-case "counters" object (arena allocs/reuses, signature-prune
// hits) so compare_bench.py can flag *work* regressions — e.g. the free
// list no longer being hit, or the subset-prune losing effectiveness —
// independent of wall-clock noise.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cache/canonical.h"
#include "cache/solve_cache.h"
#include "core/encoder.h"
#include "core/primes.h"
#include "core/solver.h"
#include "fsm/constraints_gen.h"
#include "fsm/mcnc_like.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace encodesat;

namespace {

struct CaseResult {
  std::string name;
  double wall_seconds = 0;
  std::uint64_t work_units = 0;
  std::size_t peak_arena_bytes = 0;
  std::size_t num_terms = 0;
  std::size_t folds = 0;
  bool truncated = false;
  // Deterministic work counters (the v2 "counters" object).
  std::uint64_t arena_allocs = 0;
  std::uint64_t arena_reuses = 0;
  std::uint64_t prune_sig_hits = 0;
  // Solve-cache counters (the solve_cache_* cases; zero elsewhere). The
  // hit pattern is deterministic, so compare_bench.py pins it too.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  void take_fold_counters(const SopFoldStats& fold) {
    work_units = fold.work;
    peak_arena_bytes = fold.peak_arena_bytes;
    folds = fold.folds;
    arena_allocs = fold.arena_allocs;
    arena_reuses = fold.arena_reuses;
    prune_sig_hits = fold.prune_sig_hits;
  }
};

// --- 2-CNF instance builders (deterministic) -------------------------------

std::vector<Bitset> random_graph(std::size_t n, double p, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bitset> adj(n, Bitset(n));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng.next_double() < p) {
        adj[i].set(j);
        adj[j].set(i);
      }
  return adj;
}

// Perfect matching on 2k vertices: the SOP has exactly 2^k minimal covers,
// so the fold doubles the term list at every split — pure fold throughput.
std::vector<Bitset> matching(std::size_t k) {
  std::vector<Bitset> adj(2 * k, Bitset(2 * k));
  for (std::size_t i = 0; i < k; ++i) {
    adj[2 * i].set(2 * i + 1);
    adj[2 * i + 1].set(2 * i);
  }
  return adj;
}

// Chain triples plus stride pairs — the shape of the hard instances in the
// verify recipe; dense enough that absorption does real work every fold.
std::vector<Bitset> stride_graph(std::size_t n) {
  std::vector<Bitset> adj(n, Bitset(n));
  auto edge = [&](std::size_t i, std::size_t j) {
    adj[i].set(j);
    adj[j].set(i);
  };
  for (std::size_t i = 0; i + 2 < n; ++i) {
    edge(i, i + 1);
    edge(i, i + 2);
  }
  for (std::size_t i = 0; i + 7 < n; i += 2) edge(i, i + 7);
  for (std::size_t i = 0; i + 11 < n; i += 3) edge(i, i + 11);
  return adj;
}

CaseResult run_sop_case(const std::string& name, const std::vector<Bitset>& adj,
                        std::size_t max_terms, int reps) {
  CaseResult out;
  out.name = name;
  out.wall_seconds = 1e30;
  for (int r = 0; r < reps; ++r) {
    bool truncated = false;
    Truncation reason = Truncation::kNone;
    SopFoldStats fold;
    Timer t;
    const auto sop = two_cnf_to_minimal_sop(adj, max_terms, &truncated,
                                            ~0ull, ExecContext{}, &reason,
                                            &fold);
    const double secs = t.elapsed_seconds();
    if (secs < out.wall_seconds) out.wall_seconds = secs;
    out.take_fold_counters(fold);
    out.num_terms = sop.size();
    out.truncated = truncated;
  }
  return out;
}

// Prime generation for a Table-1 machine: FSM -> mixed constraints ->
// initial dichotomies -> valid maximally raised set -> primes. planet and
// vmecont hit the term cutoff, like Table 1 (scaled down from the paper's
// 50000 to keep the regression harness fast).
CaseResult run_machine_case(const char* machine, int reps) {
  const Fsm fsm = make_mcnc_like(benchmark_spec(machine));
  ConstraintGenOptions gopts;
  gopts.max_dominance = static_cast<int>(fsm.num_states()) * 2;
  gopts.max_disjunctive = static_cast<int>(fsm.num_states()) / 4;
  const ConstraintSet cs = generate_mixed_constraints(fsm, gopts);
  const FeasibilityResult feas = check_feasible(cs, ExecContext{});

  CaseResult out;
  out.name = std::string("primes_") + machine;
  out.wall_seconds = 1e30;
  PrimeGenOptions popts;
  popts.max_terms = 12000;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    const PrimeGenResult pg = generate_prime_dichotomies(feas.raised, popts);
    const double secs = t.elapsed_seconds();
    if (secs < out.wall_seconds) out.wall_seconds = secs;
    out.take_fold_counters(pg.fold);
    out.num_terms = pg.fold.num_terms;
    out.truncated = pg.truncated;
  }
  return out;
}

// --- solve-cache repeat workload -------------------------------------------

// Overlapping face chains (the hard_instance shape from the solver tests):
// exact-solvable without budgets, with enough prime/cover work that a full
// pipeline run dwarfs a canonicalize+lookup round trip.
ConstraintSet chain_faces(int n) {
  ConstraintSet cs;
  for (int i = 0; i < n; ++i) cs.symbols().intern("s" + std::to_string(i));
  auto face = [&](std::initializer_list<int> m) {
    std::vector<std::uint32_t> ids;
    for (int id : m) ids.push_back(static_cast<std::uint32_t>(id));
    cs.add_face_ids(std::move(ids));
  };
  for (int i = 0; i + 2 < n; ++i) face({i, i + 1, i + 2});
  for (int i = 0; i + 7 < n; i += 2) face({i, i + 7});
  for (int i = 0; i + 11 < n; i += 3) face({i, i + 11});
  return cs;
}

// Solves the same canonical instance under 8 symbol renamings through the
// Solver facade — cold (cache off: 8 full pipeline runs) or cached (one
// run plus 7 canonicalize+lookup round trips). The pair quantifies the
// repeat-workload speedup; the deterministic 7-hits-of-8 pattern lands in
// the counters object.
CaseResult run_cache_case(const std::string& name, const ConstraintSet& cs,
                          bool cached, int reps) {
  const std::uint32_t n = cs.num_symbols();
  std::vector<ConstraintSet> renderings;
  for (std::uint32_t k = 0; k < 8; ++k) {
    std::vector<std::uint32_t> perm(n);
    for (std::uint32_t i = 0; i < n; ++i) perm[i] = (i + 3 * k) % n;
    renderings.push_back(apply_symbol_permutation(cs, perm));
  }
  CaseResult out;
  out.name = name;
  out.wall_seconds = 1e30;
  for (int r = 0; r < reps; ++r) {
    SolveCache cache;
    SolveOptions opts;
    if (cached) opts.cache.store = &cache;
    std::size_t terms = 0;
    bool truncated = false;
    Timer t;
    for (const ConstraintSet& rcs : renderings) {
      const SolveResult res = Solver(rcs).encode(opts);
      terms += res.num_primes;
      truncated = truncated || res.truncated;
    }
    const double secs = t.elapsed_seconds();
    if (secs < out.wall_seconds) out.wall_seconds = secs;
    out.num_terms = terms;
    out.truncated = truncated;
    out.cache_hits = cache.stats().hits;
    out.cache_misses = cache.stats().misses;
  }
  return out;
}

void write_json(std::FILE* f, const std::vector<CaseResult>& cases) {
  std::fprintf(f, "{\n  \"schema\": \"encodesat-bench-primes-v2\",\n");
  std::fprintf(f, "  \"cases\": [\n");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"wall_seconds\": %.6f, "
                 "\"work_units\": %llu, \"peak_arena_bytes\": %zu, "
                 "\"num_terms\": %zu, \"folds\": %zu, \"truncated\": %s, "
                 "\"counters\": {\"arena_allocs\": %llu, "
                 "\"arena_reuses\": %llu, \"prune_sig_hits\": %llu, "
                 "\"cache_hits\": %llu, \"cache_misses\": %llu}}%s\n",
                 c.name.c_str(), c.wall_seconds,
                 static_cast<unsigned long long>(c.work_units),
                 c.peak_arena_bytes, c.num_terms, c.folds,
                 c.truncated ? "true" : "false",
                 static_cast<unsigned long long>(c.arena_allocs),
                 static_cast<unsigned long long>(c.arena_reuses),
                 static_cast<unsigned long long>(c.prune_sig_hits),
                 static_cast<unsigned long long>(c.cache_hits),
                 static_cast<unsigned long long>(c.cache_misses),
                 i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  const char* out_path = nullptr;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--reps") && i + 1 < argc)
      reps = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
      out_path = argv[++i];
    else if (!std::strcmp(argv[i], "--quick"))
      quick = true;
    else {
      std::fprintf(stderr, "usage: %s [--reps N] [--out FILE] [--quick]\n",
                   argv[0]);
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  std::vector<CaseResult> cases;
  // Figure 3's worked example as a smoke case (term count pinned at 5).
  {
    std::vector<Bitset> inc(5, Bitset(5));
    auto edge = [&](std::size_t i, std::size_t j) {
      inc[i].set(j);
      inc[j].set(i);
    };
    edge(0, 1);
    edge(0, 2);
    edge(1, 2);
    edge(2, 3);
    edge(3, 4);
    cases.push_back(run_sop_case("sop_section51", inc, 1000, reps));
  }
  cases.push_back(
      run_sop_case("sop_matching_k12", matching(12), 10000, reps));
  cases.push_back(run_sop_case("sop_random_n64_p06",
                               random_graph(64, 0.06, 12345), 20000, reps));
  cases.push_back(run_sop_case("sop_random_n56_p12",
                               random_graph(56, 0.12, 777), 20000, reps));
  cases.push_back(run_sop_case("sop_stride_n96", stride_graph(96), 20000,
                               reps));
  cases.push_back(run_machine_case("keyb", reps));
  {
    // Repeat workload: the same canonical instance under 8 symbol
    // permutations, cold vs. cached (part of the quick set so bench_check
    // guards the 7-hits-of-8 pattern).
    const ConstraintSet cs = chain_faces(10);
    cases.push_back(run_cache_case("solve_cold8_chain10", cs, false, reps));
    cases.push_back(run_cache_case("solve_cache8_chain10", cs, true, reps));
    const CaseResult& cold = cases[cases.size() - 2];
    const CaseResult& hot = cases[cases.size() - 1];
    if (hot.wall_seconds > 0)
      std::fprintf(stderr, "cache speedup: %.1fx (%llu/8 hits)\n",
                   cold.wall_seconds / hot.wall_seconds,
                   static_cast<unsigned long long>(hot.cache_hits));
  }
  if (!quick) {
    // The two Table-1 blow-up machines: the fold runs until the 50000-term
    // cutoff, exactly the regime the arena is built for.
    cases.push_back(run_machine_case("planet", reps));
    cases.push_back(run_machine_case("vmecont", reps));
  }

  std::printf("%-22s %12s %14s %12s %10s %6s %5s\n", "case", "wall_s",
              "work_units", "arena_bytes", "terms", "folds", "trunc");
  for (const CaseResult& c : cases)
    std::printf("%-22s %12.6f %14llu %12zu %10zu %6zu %5s\n", c.name.c_str(),
                c.wall_seconds, static_cast<unsigned long long>(c.work_units),
                c.peak_arena_bytes, c.num_terms, c.folds,
                c.truncated ? "yes" : "no");

  if (out_path) {
    std::FILE* f = std::fopen(out_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
    write_json(f, cases);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", out_path);
  }
  return 0;
}
