# Helper for the service_bench_check test/target (see CMakeLists.txt
# here): runs bench_service — which itself fails below the 2x warm/cold
# speedup floor and when the TCP churn workload falls below half the
# unix-socket throughput — then compare_bench.py against the committed
# baseline (wall-time budget + the deterministic cache_misses /
# cache_reuse / conns_accepted / conns_reaped counters). Expects
# BENCH_SERVICE, PYTHON, COMPARE, BASELINE, OUT_JSON.
execute_process(
  COMMAND ${BENCH_SERVICE} --reps 2 --check-speedup 2
          --check-tcp-parity 0.5 --out ${OUT_JSON}
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_service exited with ${bench_rc}")
endif()
execute_process(
  COMMAND ${PYTHON} ${COMPARE} ${BASELINE} ${OUT_JSON}
  RESULT_VARIABLE compare_rc)
if(NOT compare_rc EQUAL 0)
  message(FATAL_ERROR "compare_bench.py reported a regression (rc=${compare_rc})")
endif()
