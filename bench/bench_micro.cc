// Microbenchmarks (google-benchmark) for the framework's hot operations:
// dichotomy algebra, raising, prime generation scaling, covering, URP
// operations, and cost evaluation.
#include <benchmark/benchmark.h>

#include "core/bounded.h"
#include "core/cost.h"
#include "core/encoder.h"
#include "core/generate.h"
#include "core/output_rules.h"
#include "core/primes.h"
#include "core/solver.h"
#include "core/verify.h"
#include "covering/unate.h"
#include "logic/espresso.h"
#include "logic/urp.h"
#include "util/rng.h"

using namespace encodesat;

namespace {

ConstraintSet random_faces(std::uint32_t n, int nfaces, std::uint64_t seed) {
  Rng rng(seed);
  ConstraintSet cs;
  for (std::uint32_t i = 0; i < n; ++i)
    cs.symbols().intern("s" + std::to_string(i));
  for (int f = 0; f < nfaces; ++f) {
    std::vector<std::uint32_t> members;
    for (std::uint32_t s = 0; s < n; ++s)
      if (rng.next_bool(0.25)) members.push_back(s);
    if (members.size() >= 2 && members.size() < n)
      cs.add_face_ids(std::move(members));
  }
  return cs;
}

void BM_DichotomyCompatible(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  Dichotomy a(n), b(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    if (rng.next_bool(0.4)) a.left.set(s);
    else if (rng.next_bool(0.5)) a.right.set(s);
    if (rng.next_bool(0.4)) b.left.set(s);
    else if (rng.next_bool(0.5)) b.right.set(s);
  }
  for (auto _ : state) benchmark::DoNotOptimize(a.compatible(b));
}
BENCHMARK(BM_DichotomyCompatible)->Arg(16)->Arg(64)->Arg(256);

void BM_DichotomyCovers(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Dichotomy big(n), small(n);
  for (std::uint32_t s = 0; s < n; ++s) (s % 2 ? big.left : big.right).set(s);
  small.left.set(1);
  small.right.set(0);
  for (auto _ : state) benchmark::DoNotOptimize(big.covers(small));
}
BENCHMARK(BM_DichotomyCovers)->Arg(16)->Arg(64)->Arg(256);

void BM_GenerateInitial(benchmark::State& state) {
  const auto cs = random_faces(static_cast<std::uint32_t>(state.range(0)), 8,
                               11);
  for (auto _ : state)
    benchmark::DoNotOptimize(generate_initial_dichotomies(cs));
}
BENCHMARK(BM_GenerateInitial)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_RaiseDichotomy(benchmark::State& state) {
  // A dominance chain makes raising iterate.
  ConstraintSet cs;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) cs.symbols().intern("s" + std::to_string(i));
  for (int i = 0; i + 1 < n; ++i)
    cs.add_dominance_ids(static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(i + 1));
  for (auto _ : state) {
    Dichotomy d(static_cast<std::size_t>(n));
    d.left.set(0);
    d.right.set(static_cast<std::uint32_t>(n - 1));
    benchmark::DoNotOptimize(raise_dichotomy(d, cs));
  }
}
BENCHMARK(BM_RaiseDichotomy)->Arg(8)->Arg(32)->Arg(128);

void BM_PrimeGeneration(benchmark::State& state) {
  const auto cs = random_faces(static_cast<std::uint32_t>(state.range(0)), 6,
                               23);
  std::vector<Dichotomy> d;
  for (const auto& i : generate_initial_dichotomies(cs))
    d.push_back(i.dichotomy);
  dedupe_dichotomies(d);
  for (auto _ : state) {
    PrimeGenOptions opts;
    opts.max_terms = 100000;
    benchmark::DoNotOptimize(generate_prime_dichotomies(d, opts));
  }
}
BENCHMARK(BM_PrimeGeneration)->Arg(6)->Arg(8)->Arg(10)->Arg(12);

void BM_ExactEncode(benchmark::State& state) {
  const auto cs = random_faces(static_cast<std::uint32_t>(state.range(0)), 5,
                               37);
  const Solver solver(cs);
  for (auto _ : state) {
    SolveOptions opts;
    opts.pipeline = SolveOptions::Pipeline::kExact;
    opts.exact.cover_options.max_nodes = 50000;
    benchmark::DoNotOptimize(solver.encode(opts));
  }
}
BENCHMARK(BM_ExactEncode)->Arg(6)->Arg(8)->Arg(10);

void BM_Tautology(benchmark::State& state) {
  const int nv = static_cast<int>(state.range(0));
  const Domain dom = Domain::binary(nv, 1);
  Rng rng(5);
  Cover f(dom);
  for (int i = 0; i < 4 * nv; ++i) {
    Cube c = full_cube(dom);
    for (int v = 0; v < nv; ++v) {
      const double r = rng.next_double();
      if (r < 0.3)
        c.bits.reset(static_cast<std::size_t>(dom.pos(v, 0)));
      else if (r < 0.6)
        c.bits.reset(static_cast<std::size_t>(dom.pos(v, 1)));
    }
    f.add(c);
  }
  for (auto _ : state) benchmark::DoNotOptimize(is_tautology(f));
}
BENCHMARK(BM_Tautology)->Arg(6)->Arg(10)->Arg(14);

void BM_Espresso(benchmark::State& state) {
  const int nv = static_cast<int>(state.range(0));
  const Domain dom = Domain::binary(nv, 2);
  Rng rng(17);
  Cover on(dom);
  for (int i = 0; i < 3 * nv; ++i) {
    Cube c(dom);
    for (int v = 0; v < nv; ++v) {
      const int pick = static_cast<int>(rng.next_below(3));
      if (pick != 0) c.bits.set(static_cast<std::size_t>(dom.pos(v, 1)));
      if (pick != 1) c.bits.set(static_cast<std::size_t>(dom.pos(v, 0)));
    }
    c.bits.set(static_cast<std::size_t>(dom.out_pos(
        static_cast<int>(rng.next_below(2)))));
    on.add(c);
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(espresso(on, Cover(dom)));
}
BENCHMARK(BM_Espresso)->Arg(6)->Arg(10);

void BM_CostEvaluation(benchmark::State& state) {
  const auto cs = random_faces(12, 6, 29);
  Encoding enc;
  enc.bits = 4;
  enc.codes.resize(12);
  for (std::uint32_t s = 0; s < 12; ++s) enc.codes[s] = s;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        evaluate_encoding_cost(enc, cs, state.range(0) == 1));
}
BENCHMARK(BM_CostEvaluation)->Arg(0)->Arg(1);

void BM_BoundedEncode(benchmark::State& state) {
  const auto cs = random_faces(static_cast<std::uint32_t>(state.range(0)), 6,
                               41);
  for (auto _ : state) {
    BoundedEncodeOptions opts;
    opts.cost = CostKind::kViolatedFaces;
    benchmark::DoNotOptimize(
        bounded_encode(cs, minimum_code_length(
                               static_cast<std::uint32_t>(state.range(0))),
                       opts));
  }
}
BENCHMARK(BM_BoundedEncode)->Arg(8)->Arg(16)->Arg(32);


void BM_Feasibility(benchmark::State& state) {
  const auto cs = random_faces(static_cast<std::uint32_t>(state.range(0)), 6,
                               51);
  const Solver solver(cs);
  for (auto _ : state) benchmark::DoNotOptimize(solver.feasibility());
}
BENCHMARK(BM_Feasibility)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_VerifyEncoding(benchmark::State& state) {
  const auto cs = random_faces(static_cast<std::uint32_t>(state.range(0)), 8,
                               53);
  Encoding enc;
  enc.bits = minimum_code_length(static_cast<std::uint32_t>(state.range(0)));
  enc.codes.resize(static_cast<std::size_t>(state.range(0)));
  for (std::uint32_t s = 0; s < enc.codes.size(); ++s) enc.codes[s] = s;
  for (auto _ : state) benchmark::DoNotOptimize(verify_encoding(enc, cs));
}
BENCHMARK(BM_VerifyEncoding)->Arg(16)->Arg(64);

void BM_UnateCovering(benchmark::State& state) {
  Rng rng(77);
  UnateCoverProblem p;
  p.num_columns = static_cast<std::size_t>(state.range(0));
  for (int r = 0; r < 30; ++r) {
    Bitset row(p.num_columns);
    for (std::size_t c = 0; c < p.num_columns; ++c)
      if (rng.next_bool(0.3)) row.set(c);
    if (row.empty()) row.set(rng.next_below(p.num_columns));
    p.rows.push_back(std::move(row));
  }
  for (auto _ : state) {
    UnateCoverOptions o;
    o.max_nodes = 2000;
    benchmark::DoNotOptimize(solve_unate_cover(p, o));
  }
}
BENCHMARK(BM_UnateCovering)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
