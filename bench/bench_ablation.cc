// Ablation studies for the design choices DESIGN.md calls out:
//   A. Raising: generating primes from the maximally raised valid
//      dichotomies versus from the merely-valid initial set (the paper's
//      efficiency claim in Section 6: raising avoids generating primes
//      that are later deleted).
//   B. Prime generation: the cs/ps 2-CNF algorithm versus Tracey-style
//      iterated consensus (the pre-paper approach of [25], which "could
//      not complete on any of the examples").
//   C. Covering column reduction: coverage-dominance preprocessing versus
//      raw prime columns.
#include <cstdio>

#include "baseline/consensus_primes.h"
#include "core/encoder.h"
#include "core/generate.h"
#include "core/output_rules.h"
#include "core/primes.h"
#include "covering/unate.h"
#include "fsm/constraints_gen.h"
#include "fsm/mcnc_like.h"
#include "util/timer.h"

using namespace encodesat;

namespace {

std::vector<Dichotomy> valid_initial(const ConstraintSet& cs) {
  std::vector<Dichotomy> out;
  for (const auto& i : generate_initial_dichotomies(cs))
    if (dichotomy_valid(i.dichotomy, cs)) out.push_back(i.dichotomy);
  dedupe_dichotomies(out);
  return out;
}

std::vector<Dichotomy> raised_set(const ConstraintSet& cs) {
  std::vector<Dichotomy> out;
  for (const auto& i : generate_initial_dichotomies(cs)) {
    if (!dichotomy_valid(i.dichotomy, cs)) continue;
    Dichotomy r = i.dichotomy;
    if (!raise_dichotomy(r, cs)) continue;
    if (!dichotomy_valid(r, cs)) continue;
    out.push_back(std::move(r));
  }
  dedupe_dichotomies(out);
  return out;
}

std::size_t count_valid(std::vector<Dichotomy> primes,
                        const ConstraintSet& cs) {
  remove_invalid_dichotomies(primes, cs);
  return primes.size();
}

void ablation_raising() {
  std::printf("=== Ablation A: raising before prime generation ===\n");
  std::printf("%-9s %10s %10s %12s %12s\n", "Name", "raw prims",
              "raw valid", "raised prims", "raised valid");
  for (const char* name : {"bbsse", "cse", "dk512", "master", "keyb"}) {
    const Fsm fsm = make_mcnc_like(benchmark_spec(name));
    const ConstraintSet cs = generate_mixed_constraints(fsm);
    PrimeGenOptions opts;
    opts.max_terms = 50000;

    const auto raw = generate_prime_dichotomies(valid_initial(cs), opts);
    const auto raised = generate_prime_dichotomies(raised_set(cs), opts);
    if (raw.truncated || raised.truncated) {
      std::printf("%-9s %10s %10s %12s %12s\n", name, "*", "*", "*", "*");
      continue;
    }
    std::printf("%-9s %10zu %10zu %12zu %12zu\n", name, raw.primes.size(),
                count_valid(raw.primes, cs), raised.primes.size(),
                count_valid(raised.primes, cs));
  }
  std::printf("(raising shrinks the candidate space up front instead of "
              "generating primes that are deleted later)\n\n");
}

void ablation_consensus() {
  std::printf("=== Ablation B: cs/ps vs iterated consensus ===\n");
  std::printf("%-9s %8s %10s %12s %12s %14s\n", "Name", "#dichs",
              "cs/ps (s)", "consensus(s)", "primes", "merge tries");
  for (const char* name : {"dk512", "master", "cse", "keyb"}) {
    const Fsm fsm = make_mcnc_like(benchmark_spec(name));
    const ConstraintSet cs = generate_mixed_constraints(fsm);
    const auto d = raised_set(cs);

    Timer t;
    const auto fast = generate_prime_dichotomies(d);
    const double fast_time = t.elapsed_seconds();

    ConsensusPrimesOptions copts;
    copts.max_dichotomies = 60000;
    t.reset();
    const auto slow = consensus_prime_dichotomies(d, copts);
    const double slow_time = t.elapsed_seconds();

    if (fast.truncated || slow.truncated) {
      std::printf("%-9s %8zu %10.2f %12s %12s %14zu  (consensus blew up)\n",
                  name, d.size(), fast_time,
                  slow.truncated ? "*" : "-", "*", slow.merge_attempts);
      continue;
    }
    std::printf("%-9s %8zu %10.2f %12.2f %12zu %14zu\n", name, d.size(),
                fast_time, slow_time, fast.primes.size(),
                slow.merge_attempts);
  }
  std::printf("(the paper: the previous prime-generation approach [25] "
              "could not complete on any Table 1 example)\n\n");
}

void ablation_column_reduction() {
  std::printf("=== Ablation C: covering column reduction ===\n");
  std::printf("%-9s %8s %9s %9s | %10s\n", "Name", "#rows", "raw cols",
              "red cols", "B&B nodes");
  for (const char* name : {"dk512", "master", "cse"}) {
    const Fsm fsm = make_mcnc_like(benchmark_spec(name));
    const ConstraintSet cs = generate_mixed_constraints(fsm);
    const auto init = generate_initial_dichotomies(cs);
    const auto d = raised_set(cs);
    const auto pg = generate_prime_dichotomies(d);
    if (pg.truncated) continue;

    UnateCoverProblem prob;
    prob.num_columns = pg.primes.size();
    for (const auto& i : init) {
      Bitset row(prob.num_columns);
      for (std::size_t c = 0; c < pg.primes.size(); ++c)
        if (pg.primes[c].covers(i.dichotomy)) row.set(c);
      prob.rows.push_back(std::move(row));
    }
    UnateCoverOptions fast_opts;
    fast_opts.max_nodes = 100000;
    Timer t;
    const auto sol = solve_unate_cover(prob, fast_opts);
    const double secs = t.elapsed_seconds();
    std::printf("%-9s %8zu %9zu %9zu | %10llu (%0.2fs, cost %d%s)\n", name,
                prob.rows.size(), prob.num_columns,
                sol.columns_after_reduction,
                static_cast<unsigned long long>(sol.nodes_explored), secs,
                sol.cost, sol.optimal ? "" : ", budget hit");
  }
  std::printf("(the root reduction removes coverage-dominated primes before "
              "branch and bound; the surviving cyclic core is where the "
              "NP-hard part lives — budgets keep it honest)\n\n");
}

}  // namespace

int main() {
  ablation_raising();
  ablation_consensus();
  ablation_column_reduction();
  return 0;
}
