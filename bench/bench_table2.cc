// Regenerates Table 2: two-level heuristic minimum-code-length input
// encoding, our dichotomy-based heuristic (ENC) versus the NOVA-style
// baseline. Face constraints come from ESPRESSO-MV-style multi-valued
// minimization of each machine's symbolic cover; both encoders get the
// minimum possible code length; we report the number of satisfied face
// constraints and the number of cubes in a two-level implementation of the
// encoded constraints (the paper's headline: ENC needs ~13% fewer cubes on
// average).
#include <cstdio>
#include <string>

#include "baseline/nova.h"
#include "core/bounded.h"
#include "core/cost.h"
#include "core/verify.h"
#include "fsm/constraints_gen.h"
#include "fsm/mcnc_like.h"
#include "util/timer.h"

using namespace encodesat;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  // The 15 machines of the paper's Table 2.
  const char* names[] = {"bbsse", "cse",   "dk16",    "dk512", "donfile",
                         "ex1",   "kirkman", "master", "planet", "s1",
                         "sand",  "styr",  "tbk",     "viterbi", "vmecont"};

  std::printf("Table 2: two-level heuristic minimum code length input "
              "encoding\n");
  std::printf("%-9s %7s %7s | %9s %9s | %9s %9s\n", "Name", "#States",
              "#Cons", "NOVA sat", "ENC sat", "NOVA cub", "ENC cub");
  long total_nova_cubes = 0, total_enc_cubes = 0;
  int nova_sat_total = 0, enc_sat_total = 0;
  for (const char* name : names) {
    const Fsm fsm = make_mcnc_like(benchmark_spec(name));
    const ConstraintSet cs = generate_input_constraints(fsm);
    const int bits = minimum_code_length(fsm.num_states());

    const Encoding nova = nova_encode(cs, bits);
    const EncodingCost nova_cost = evaluate_encoding_cost(nova, cs);

    BoundedEncodeOptions opts;
    opts.cost = CostKind::kCubes;
    opts.max_selection_evals = quick ? 60 : 240;
    const auto enc = bounded_encode(cs, bits, opts);

    const int nfaces = static_cast<int>(cs.faces().size());
    const int nova_sat = nfaces - nova_cost.violated_faces;
    const int enc_sat = nfaces - enc.cost.violated_faces;
    std::printf("%-9s %7u %7d | %9d %9d | %9d %9d\n", name, fsm.num_states(),
                nfaces, nova_sat, enc_sat, nova_cost.cubes, enc.cost.cubes);
    total_nova_cubes += nova_cost.cubes;
    total_enc_cubes += enc.cost.cubes;
    nova_sat_total += nova_sat;
    enc_sat_total += enc_sat;
  }
  std::printf("---\n");
  std::printf("total satisfied: NOVA %d, ENC %d\n", nova_sat_total,
              enc_sat_total);
  std::printf("total cubes:     NOVA %ld, ENC %ld (%.1f%% %s)\n",
              total_nova_cubes, total_enc_cubes,
              100.0 * static_cast<double>(total_nova_cubes - total_enc_cubes) /
                  static_cast<double>(total_nova_cubes),
              total_enc_cubes <= total_nova_cubes ? "fewer with ENC"
                                                  : "MORE with ENC");
  std::printf("paper: comparable satisfied counts; ENC ~13%% fewer cubes on "
              "average.\n");
  return 0;
}
